"""Command-line interface: run the paper's experiments from a shell.

Examples::

    python -m repro schemes
    python -m repro audit
    python -m repro stream --scheme copy --direction rx --size 65536
    python -m repro stream --scheme identity+ --cores 16 --size 16384
    python -m repro rr --scheme copy --size 64
    python -m repro memcached --cores 8
    python -m repro storage --scheme copy --block-size 262144
    python -m repro trace --workload stream --cores 16 \\
        --scheme identity+ --requests --tail p99 --perfetto trace.json
    python -m repro report --out REPORT.md
    python -m repro diff --workload stream --schemes strict,copy
    python -m repro diff benchmarks/results/BENCH_quick.json

Every subcommand prints the same metrics the corresponding paper
table/figure reports.  ``python -m repro bench`` runs the full figure
registry and writes a machine-readable ``BENCH_*.json`` record; the
per-figure scripts remain available through
``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Iterable, Sequence

from repro.attacks.audit import audit_all, render_audit_exposure, \
    render_table1
from repro.dma.registry import ALL_SCHEMES, PAPER_ALIASES, scheme_properties
from repro.errors import (
    AllocationError,
    ConfigurationError,
    DmaApiError,
    IommuFault,
    IovaExhaustedError,
    KallocError,
    MemoryAccessError,
    PoolExhaustedError,
    ReproError,
    SecurityViolation,
    SimulationError,
)
from repro.obs.context import Observability
from repro.obs.requests import parse_percentile, tail_report
from repro.stats.results import RunResult
from repro.stats.timeline import (
    render_observability_report,
    render_request_summary,
    render_request_timeline,
    render_tail_report,
)
from repro.workloads.memcached import MemcachedConfig, run_memcached
from repro.workloads.netperf import (
    RRConfig,
    StreamConfig,
    run_tcp_rr,
    run_tcp_stream,
)
from repro.workloads.storage import StorageConfig, run_storage


#: ReproError subclasses mapped to distinct exit codes, most specific
#: first (the first isinstance match wins).  Scripts and CI can branch
#: on the failure kind without parsing stderr; 1 is the generic fallback.
_EXIT_CODES: Sequence[tuple[type, int]] = (
    (ConfigurationError, 2),
    (IovaExhaustedError, 3),
    (PoolExhaustedError, 4),
    (KallocError, 5),
    (AllocationError, 6),
    (MemoryAccessError, 7),
    (IommuFault, 8),
    (DmaApiError, 9),
    (SecurityViolation, 10),
    (SimulationError, 12),
    (ReproError, 1),
)


def exit_code_for(exc: ReproError) -> int:
    for kind, code in _EXIT_CODES:
        if isinstance(exc, kind):
            return code
    return 1


def _print_result(result: RunResult, *, show_latency: bool = False,
                  show_tps: bool = False) -> None:
    print(f"scheme          : {result.scheme}")
    print(f"workload        : {result.workload} {result.params}")
    print(f"throughput      : {result.throughput_gbps:.2f} Gb/s")
    if show_tps and result.transactions_per_sec is not None:
        print(f"transactions/s  : {result.transactions_per_sec:,.0f}")
    if show_latency and result.latency_us is not None:
        print(f"mean latency    : {result.latency_us:.1f} us")
    print(f"cpu utilization : {100 * result.cpu_utilization:.1f}%")
    print(f"per-unit cpu    : {result.us_per_unit:.3f} us over "
          f"{result.units} units")
    print("breakdown (us/unit):")
    for category, us in result.breakdown_us_per_unit().items():
        if us > 0:
            print(f"  {category:<24} {us:9.3f}")
    if "pool" in result.extras:
        pool = result.extras["pool"]
        print(f"shadow pool     : {pool['bytes_allocated'] / (1 << 20):.1f} "
              f"MiB allocated, peak in-flight {pool['peak_in_flight']}")
    if result.extras.get("sync_invalidations"):
        print(f"invalidations   : {result.extras['sync_invalidations']}")


def _positive_int(value: str) -> int:
    try:
        n = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {value!r}")
    if n < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer: {value}")
    return n


def _scheme(value: str) -> str:
    resolved = PAPER_ALIASES.get(value, value)
    if resolved not in ALL_SCHEMES:
        raise argparse.ArgumentTypeError(
            f"unknown scheme {value!r}; choices: "
            f"{', '.join(ALL_SCHEMES)} (aliases: identity+, identity-)")
    return resolved


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'True IOMMU Protection from DMA "
                    "Attacks' (ASPLOS'16)")
    sub = parser.add_subparsers(dest="command", required=True)

    # Shared tracing/output options for every workload subcommand.
    tracing = argparse.ArgumentParser(add_help=False)
    tracing.add_argument("--trace", metavar="PATH", default=None,
                         help="enable tracing/metrics; write the event "
                              "trace as JSONL to PATH")
    tracing.add_argument("--trace-limit", type=_positive_int,
                         default=1 << 16,
                         help="ring-buffer capacity in events "
                              "(oldest evicted first; default 65536)")
    tracing.add_argument("--json", metavar="PATH", default=None,
                         help="write the run as a bench-record JSON "
                              "(same row schema as BENCH_*.json) to "
                              "PATH, or '-' for stdout")
    tracing.add_argument("--perfetto", metavar="PATH", default=None,
                         help="write a Chrome trace_event JSON of the "
                              "run to PATH (load in ui.perfetto.dev or "
                              "chrome://tracing)")

    sub.add_parser("schemes", help="list protection schemes and properties")

    audit = sub.add_parser("audit",
                           help="run the attack scenarios; print Table 1")
    audit.add_argument("--scheme", type=_scheme, default=None,
                       help="audit a single scheme instead of all")
    audit.add_argument("--exposure", action="store_true",
                       help="also measure and print the per-scheme "
                            "exposure report (stale windows, granularity "
                            "excess, faults)")

    stream = sub.add_parser("stream", parents=[tracing],
                            help="netperf TCP_STREAM (Figs 3/4/6/7)")
    stream.add_argument("--scheme", type=_scheme, default="copy")
    stream.add_argument("--direction", choices=("rx", "tx"), default="rx")
    stream.add_argument("--size", type=int, default=16384,
                        help="message size in bytes")
    stream.add_argument("--cores", type=int, default=1)
    stream.add_argument("--units", type=int, default=1000,
                        help="segments (rx) / messages (tx) per core")

    rr = sub.add_parser("rr", parents=[tracing],
                        help="netperf TCP_RR latency (Fig 9)")
    rr.add_argument("--scheme", type=_scheme, default="copy")
    rr.add_argument("--size", type=int, default=64)
    rr.add_argument("--transactions", type=int, default=300)

    mc = sub.add_parser("memcached", parents=[tracing],
                        help="memcached + memslap (Fig 11)")
    mc.add_argument("--scheme", type=_scheme, default="copy")
    mc.add_argument("--cores", type=int, default=16)
    mc.add_argument("--transactions", type=int, default=400,
                    help="transactions per core")

    st = sub.add_parser("storage", parents=[tracing],
                        help="SSD-style block I/O (§5.5)")
    st.add_argument("--scheme", type=_scheme, default="copy")
    st.add_argument("--block-size", type=int, default=4096)
    st.add_argument("--cores", type=int, default=1)
    st.add_argument("--ops", type=int, default=400, help="ops per core")

    trace = sub.add_parser(
        "trace", parents=[tracing],
        help="request-scoped causal tracing: per-request timelines, "
             "latency percentiles, tail attribution, Perfetto export")
    trace.add_argument("--workload",
                       choices=("stream", "rr", "memcached", "storage"),
                       default="stream")
    trace.add_argument("--scheme", type=_scheme, default="copy")
    trace.add_argument("--direction", choices=("rx", "tx"), default="rx",
                       help="stream direction (stream workload only)")
    trace.add_argument("--size", type=int, default=16384,
                       help="message size (stream/rr) or block size "
                            "(storage) in bytes")
    trace.add_argument("--cores", type=int, default=1)
    trace.add_argument("--units", type=int, default=400,
                       help="units/transactions/ops per core")
    trace.add_argument("--requests", action="store_true",
                       help="also print the causal timeline of the "
                            "slowest retained requests")
    trace.add_argument("--tail", type=parse_percentile, default=99.0,
                       metavar="PCT",
                       help="tail percentile for the critical-path "
                            "report, e.g. p99, p99.9, 95 (default p99)")

    chaos = sub.add_parser(
        "chaos",
        help="deterministic fault-injection soak: run schemes under a "
             "fault mix, audit for leaks, print a degradation report")
    chaos.add_argument("--seed", type=int, action="append", default=None,
                       metavar="N",
                       help="fault-plan seed (repeatable; default 1). "
                            "Same seed + same plan => identical trace")
    chaos.add_argument("--mix", default="mixed",
                       choices=("none", "resource", "invalidation",
                                "device", "mixed", "all"),
                       help="named fault mix (default mixed); 'all' runs "
                            "every mix, 'none' only the baselines")
    chaos.add_argument("--plan", metavar="SPEC", default=None,
                       help="explicit plan instead of --mix, e.g. "
                            "'pool.grow:rate=0.05,inv.stall:at=3|7'")
    chaos.add_argument("--schemes", metavar="LIST", default=None,
                       help="comma-separated schemes (default: all)")
    chaos.add_argument("--cores", type=_positive_int, default=1)
    chaos.add_argument("--units", type=_positive_int, default=120,
                       help="traffic units (RX frame + TX chunk each) "
                            "per run (default 120)")
    chaos.add_argument("--report", metavar="PATH", default=None,
                       help="also write the degradation report to PATH")
    chaos.add_argument("--json", metavar="PATH", default=None,
                       help="write machine-readable soak rows to PATH, "
                            "or '-' for stdout")

    scale_p = sub.add_parser(
        "scale",
        help="scalability observatory: deterministic core-count sweeps "
             "with serial-fraction fits and lock-contention attribution")
    scale_p.add_argument("--workload",
                         choices=("stream", "stream-tx", "storage",
                                  "memcached"),
                         default="stream")
    scale_p.add_argument("--schemes", metavar="LIST",
                         default="identity-strict,copy",
                         help="comma-separated schemes to sweep "
                              "(aliases like strict/copy allowed; "
                              "default identity-strict,copy)")
    scale_p.add_argument("--cores", metavar="LIST",
                         default="1,2,4,8,16,32,64",
                         help="comma-separated core counts "
                              "(default 1,2,4,8,16,32,64)")
    sizing = scale_p.add_mutually_exclusive_group()
    sizing.add_argument("--quick", action="store_true",
                        help="smoke sizing (default)")
    sizing.add_argument("--full", action="store_true",
                        help="report sizing: stable curves to 64 cores")
    scale_p.add_argument("--jobs", type=_positive_int, default=1,
                         metavar="N",
                         help="run sweep points across N processes; the "
                              "record is byte-stable regardless of N "
                              "(default 1)")
    scale_p.add_argument("--out", metavar="DIR", default=None,
                         help="output directory for scale.json/scale.md "
                              "(default benchmarks/results)")

    fleet_p = sub.add_parser(
        "fleet",
        help="fleet capacity observatory: max sustained users per "
             "scheme at an SLO objective, with breach forensics")
    fleet_p.add_argument("--schemes", metavar="LIST",
                         default="identity-strict,copy",
                         help="comma-separated schemes to search "
                              "(aliases like strict/copy allowed; "
                              "default identity-strict,copy)")
    fleet_sizing = fleet_p.add_mutually_exclusive_group()
    fleet_sizing.add_argument("--quick", action="store_true",
                              help="smoke sizing (default)")
    fleet_sizing.add_argument("--full", action="store_true",
                              help="report sizing: longer diurnal "
                                   "trace, tighter bisection")
    fleet_p.add_argument("--jobs", type=_positive_int, default=1,
                         metavar="N",
                         help="search schemes across N processes; the "
                              "record is byte-stable regardless of N "
                              "(default 1)")
    fleet_p.add_argument("--out", metavar="DIR", default=None,
                         help="output directory for fleet.json/fleet.md/"
                              "fleet_windows.jsonl "
                              "(default benchmarks/results)")

    diff_p = sub.add_parser(
        "diff",
        help="differential root-cause report: A/B attribution between "
             "runs, schemes, and the checked-in baseline")
    diff_p.add_argument("paths", nargs="*", metavar="RECORD",
                        help="two records: diff A vs B; one record: "
                             "diff the checked-in baseline vs it; none: "
                             "run a live scheme pair (--workload)")
    diff_p.add_argument("--workload",
                        choices=("stream", "stream-tx", "rr",
                                 "memcached", "storage"),
                        default=None,
                        help="live-pair workload (omit when diffing "
                             "record files)")
    diff_p.add_argument("--schemes", metavar="A,B",
                        default="identity-strict,copy",
                        help="the two schemes a live pair compares "
                             "(aliases like strict/copy allowed; "
                             "default identity-strict,copy)")
    diff_sizing = diff_p.add_mutually_exclusive_group()
    diff_sizing.add_argument("--quick", action="store_true",
                             help="live-pair smoke sizing (default)")
    diff_sizing.add_argument("--full", action="store_true",
                             help="live-pair report sizing")
    diff_p.add_argument("--cores", type=_positive_int, default=None,
                        help="override live-pair core count")
    diff_p.add_argument("--size", type=_positive_int, default=None,
                        help="override live-pair message/block size")
    diff_p.add_argument("--units", type=_positive_int, default=None,
                        help="override live-pair units per core")
    diff_p.add_argument("--tail", type=parse_percentile, default=99.0,
                        metavar="PCT",
                        help="tail percentile for the quantile-shift "
                             "attribution (default p99)")
    diff_p.add_argument("--jobs", type=_positive_int, default=1,
                        metavar="N",
                        help="run the live pair across N processes; "
                             "the report is byte-stable regardless of N "
                             "(default 1)")
    diff_p.add_argument("--out", metavar="DIR", default=None,
                        help="output directory for diff.md/diff.json "
                             "(default benchmarks/results)")
    diff_p.add_argument("--quiet", action="store_true",
                        help="write the artifacts without printing the "
                             "report")

    report = sub.add_parser(
        "report", help="one-shot consolidated report: quick bench + "
                       "markdown summary with latency tails")
    report.add_argument("--out", metavar="PATH", default=None,
                        help="write the markdown report to PATH "
                             "(default benchmarks/results/REPORT.md)")
    report.add_argument("--only", action="append", metavar="FIG",
                        help="limit the bench sweep to this figure "
                             "(repeatable)")
    report.add_argument("--tail", type=parse_percentile, default=99.0,
                        metavar="PCT",
                        help="tail percentile for the attribution "
                             "section (default p99)")
    report.add_argument("--jobs", type=_positive_int, default=1,
                        metavar="N",
                        help="build figures across N processes "
                             "(default 1)")

    bench = sub.add_parser(
        "bench", help="unified figure runner: BENCH_*.json + report + "
                      "optional regression gate")
    scale = bench.add_mutually_exclusive_group()
    scale.add_argument("--quick", action="store_true",
                       help="small sweeps, every figure (default)")
    scale.add_argument("--full", action="store_true",
                       help="paper-scale sweeps")
    bench.add_argument("--only", action="append", metavar="FIG",
                       help="run only this figure (repeatable), "
                            "e.g. --only fig03 --only fig08")
    bench.add_argument("--baseline", metavar="PATH", default=None,
                       help="compare against a prior BENCH_*.json and "
                            "exit non-zero on regression")
    bench.add_argument("--out", metavar="DIR", default=None,
                       help="output directory "
                            "(default benchmarks/results)")
    bench.add_argument("--jobs", type=_positive_int, default=1,
                       metavar="N",
                       help="shard the figure matrix across N processes; "
                            "the merged record is byte-stable regardless "
                            "of N (default 1)")

    return parser


def cmd_schemes() -> int:
    name_w = max(len(name) for name in ALL_SCHEMES) + 2
    label_w = max(len(scheme_properties(name).label)
                  for name in ALL_SCHEMES) + 2
    print(f"{'name':<{name_w}}{'label':<{label_w}}security")
    for name in ALL_SCHEMES:
        props = scheme_properties(name)
        security = []
        if props.iommu_protection:
            security.append("iommu")
        if props.sub_page:
            security.append("sub-page")
        if props.no_window:
            security.append("no-window")
        print(f"{name:<{name_w}}{props.label:<{label_w}}"
              f"{'+'.join(security) or 'none'}")
    print("\naliases: " + ", ".join(
        f"{alias} -> {target}"
        for alias, target in sorted(PAPER_ALIASES.items())))
    return 0


def cmd_audit(scheme: str | None, exposure: bool = False) -> int:
    schemes: Sequence[str] = (scheme,) if scheme else ALL_SCHEMES
    rows = audit_all(schemes=schemes, strict=False, exposure=exposure)
    print(render_table1(rows))
    if exposure:
        print()
        print(render_audit_exposure(rows))
    bad = [row.scheme for row in rows if not row.matches_claims]
    if bad:
        print(f"\nMISMATCH between observed and claimed properties: {bad}",
              file=sys.stderr)
        return 1
    print("\nall observed security properties match the schemes' claims")
    return 0


def _make_obs(args, always: bool = False) -> Observability | None:
    """Build the capture context when an output flag was given.

    ``--json``/``--perfetto`` capture too so their outputs carry span
    and request attribution; the zero-overhead guarantee keeps the
    numbers identical either way.  ``always`` forces capture even with
    no output flags (the ``trace`` subcommand always records requests).
    """
    trace = getattr(args, "trace", None)
    json_out = getattr(args, "json", None)
    perfetto = getattr(args, "perfetto", None)
    if not always and trace is None and json_out is None \
            and perfetto is None:
        return None
    # Fail fast on unwritable paths — before the run, not after it.
    for label, path in (("trace", trace), ("json", json_out),
                        ("perfetto", perfetto)):
        if path is None or path == "-":
            continue
        try:
            with open(path, "w"):
                pass
        except OSError as exc:
            raise SystemExit(
                f"error: cannot write {label} to {path}: {exc}")
    return Observability.capture(trace_capacity=args.trace_limit)


def _json_quiet(args) -> bool:
    """``--json -`` owns stdout: suppress the human-readable output."""
    return getattr(args, "json", None) == "-"


def _finish_obs(obs: Observability | None, args,
                result: RunResult | None = None) -> None:
    """Write the JSONL trace / JSON record; print the report."""
    if obs is None:
        return
    json_out = getattr(args, "json", None)
    if json_out is not None and result is not None:
        from repro.bench.record import single_run_record
        from repro.stats.export import result_to_row

        record = single_run_record(result_to_row(result),
                                   spans=obs.spans.to_dict())
        text = json.dumps(record, indent=2) + "\n"
        if json_out == "-":
            sys.stdout.write(text)
        else:
            with open(json_out, "w") as fh:
                fh.write(text)
    perfetto = getattr(args, "perfetto", None)
    if perfetto is not None:
        from repro.obs.perfetto import write_perfetto

        count = write_perfetto(obs, perfetto)
        if not _json_quiet(args):
            print(f"perfetto        : {count} events written to "
                  f"{perfetto} (open in ui.perfetto.dev)")
    if args.trace is not None:
        count = obs.tracer.write_jsonl(args.trace)
        if not _json_quiet(args):
            print()
            print(render_observability_report(obs))
            print(f"trace           : {count} events written to "
                  f"{args.trace}")


def cmd_trace(args) -> int:
    """Run one workload under full capture; tell the request story."""
    obs = _make_obs(args, always=True)
    if args.workload == "stream":
        result = run_tcp_stream(StreamConfig(
            scheme=args.scheme, direction=args.direction,
            message_size=args.size, cores=args.cores,
            units_per_core=args.units,
            warmup_units=max(20, args.units // 10), obs=obs))
    elif args.workload == "rr":
        result = run_tcp_rr(RRConfig(
            scheme=args.scheme, message_size=args.size,
            transactions=args.units,
            warmup_transactions=max(10, args.units // 10), obs=obs))
    elif args.workload == "memcached":
        result = run_memcached(MemcachedConfig(
            scheme=args.scheme, cores=args.cores,
            transactions_per_core=args.units,
            warmup_transactions=max(10, args.units // 10), obs=obs))
    else:
        result = run_storage(StorageConfig(
            scheme=args.scheme, block_size=args.size,
            cores=args.cores, ops_per_core=args.units,
            warmup_ops=max(10, args.units // 10), obs=obs))
    if not _json_quiet(args):
        _print_result(result, show_latency=True, show_tps=True)
        print()
        print(render_request_summary(obs.requests))
        print()
        print(render_tail_report(tail_report(obs.requests,
                                             percentile=args.tail)))
        if args.requests:
            slowest = sorted(obs.requests.retained(),
                             key=lambda r: -r.latency)[:3]
            for record in slowest:
                print()
                print(render_request_timeline(record))
    _finish_obs(obs, args, result)
    return 0


def cmd_chaos(args) -> int:
    """Run the chaos soak matrix; non-zero when an invariant breaks."""
    from repro.faults.plan import FaultPlan
    from repro.faults.soak import (MIXES, SoakRow, mix_plan,
                                   render_soak_report, run_chaos,
                                   soak_matrix)

    seeds = tuple(args.seed) if args.seed else (1,)
    if args.schemes is not None:
        schemes = tuple(_scheme(s.strip())
                        for s in args.schemes.split(",") if s.strip())
        if not schemes:
            raise ConfigurationError(f"empty scheme list {args.schemes!r}")
    else:
        schemes = ALL_SCHEMES
    if args.plan is not None:
        rows = []
        for scheme in schemes:
            for seed in seeds:
                base = run_chaos(scheme, FaultPlan(seed=seed),
                                 cores=args.cores, units=args.units)
                res = run_chaos(scheme, FaultPlan.parse(args.plan,
                                                        seed=seed),
                                cores=args.cores, units=args.units)
                rows.append(SoakRow(result=res, mix="custom",
                                    baseline_goodput=base.goodput))
    else:
        mixes = (tuple(MIXES) if args.mix == "all"
                 else () if args.mix == "none" else (args.mix,))
        rows = soak_matrix(schemes, mixes, seeds, cores=args.cores,
                           units=args.units)
    text = render_soak_report(rows)
    if args.json != "-":
        print(text)
    if args.report is not None:
        with open(args.report, "w") as fh:
            fh.write(text + "\n")
        if args.json != "-":
            print(f"report written to {args.report}")
    if args.json is not None:
        payload = json.dumps([_soak_row_dict(row) for row in rows],
                             indent=2, sort_keys=True) + "\n"
        if args.json == "-":
            sys.stdout.write(payload)
        else:
            with open(args.json, "w") as fh:
                fh.write(payload)
    return 0 if all(row.result.ok for row in rows) else 1


def _soak_row_dict(row) -> dict:
    r = row.result
    return {
        "scheme": r.scheme, "mix": row.mix, "seed": r.seed,
        "plan": r.plan_desc, "cores": r.cores, "units": r.units,
        "rx_delivered": r.rx_delivered, "rx_offered": r.rx_offered,
        "tx_segments": r.tx_segments, "wall_cycles": r.wall_cycles,
        "wall_seconds": round(r.wall_seconds, 3),
        "sim_cycles_per_wall_second": round(r.sim_cycles_per_wall_second),
        "goodput": r.goodput, "degradation_pct": row.degradation_pct,
        "faults": r.fault_summary, "recovery": r.recovery,
        "exposure": r.exposure, "violations": r.violations,
    }


def main(argv: Iterable[str] | None = None) -> int:
    args = build_parser().parse_args(
        list(argv) if argv is not None else None)
    try:
        return _dispatch(args)
    except ReproError as exc:
        # One line, one distinct exit code per error family — no
        # tracebacks for anticipated failures (see _EXIT_CODES).
        print(f"error: {exc}", file=sys.stderr)
        return exit_code_for(exc)


def _dispatch(args) -> int:
    if args.command == "schemes":
        return cmd_schemes()
    if args.command == "audit":
        return cmd_audit(args.scheme, exposure=args.exposure)
    if args.command == "stream":
        obs = _make_obs(args)
        result = run_tcp_stream(StreamConfig(
            scheme=args.scheme, direction=args.direction,
            message_size=args.size, cores=args.cores,
            units_per_core=args.units,
            warmup_units=max(50, args.units // 10), obs=obs))
        if not _json_quiet(args):
            _print_result(result)
        _finish_obs(obs, args, result)
        return 0
    if args.command == "rr":
        obs = _make_obs(args)
        result = run_tcp_rr(RRConfig(
            scheme=args.scheme, message_size=args.size,
            transactions=args.transactions,
            warmup_transactions=max(20, args.transactions // 10), obs=obs))
        if not _json_quiet(args):
            _print_result(result, show_latency=True)
        _finish_obs(obs, args, result)
        return 0
    if args.command == "memcached":
        obs = _make_obs(args)
        result = run_memcached(MemcachedConfig(
            scheme=args.scheme, cores=args.cores,
            transactions_per_core=args.transactions,
            warmup_transactions=max(30, args.transactions // 10), obs=obs))
        if not _json_quiet(args):
            _print_result(result, show_tps=True)
        _finish_obs(obs, args, result)
        return 0
    if args.command == "storage":
        obs = _make_obs(args)
        result = run_storage(StorageConfig(
            scheme=args.scheme, block_size=args.block_size,
            cores=args.cores, ops_per_core=args.ops,
            warmup_ops=max(20, args.ops // 10), obs=obs))
        if not _json_quiet(args):
            _print_result(result, show_tps=True)
        _finish_obs(obs, args, result)
        return 0
    if args.command == "trace":
        return cmd_trace(args)
    if args.command == "chaos":
        return cmd_chaos(args)
    if args.command == "scale":
        from repro.bench.scale import run_scale

        schemes = [s.strip() for s in args.schemes.split(",") if s.strip()]
        try:
            cores = [int(c) for c in args.cores.split(",") if c.strip()]
        except ValueError:
            raise ConfigurationError(
                f"bad core list {args.cores!r}: expected "
                f"comma-separated integers")
        mode = "full" if args.full else "quick"
        return run_scale(workload=args.workload, schemes=schemes,
                         cores=cores, mode=mode, jobs=args.jobs,
                         out_dir=args.out)
    if args.command == "fleet":
        from repro.bench.fleet import run_fleet_capacity

        schemes = [s.strip() for s in args.schemes.split(",") if s.strip()]
        mode = "full" if args.full else "quick"
        return run_fleet_capacity(schemes=schemes, mode=mode,
                                  jobs=args.jobs, out_dir=args.out)
    if args.command == "diff":
        from repro.obs.diff.command import run_diff

        schemes = [_scheme(s.strip())
                   for s in args.schemes.split(",") if s.strip()]
        mode = "full" if args.full else "quick"
        return run_diff(paths=args.paths, workload=args.workload,
                        schemes=schemes, mode=mode, cores=args.cores,
                        size=args.size, units=args.units,
                        tail=args.tail, jobs=args.jobs,
                        out_dir=args.out, quiet=args.quiet)
    if args.command == "report":
        from repro.bench.report import run_report

        return run_report(out=args.out, only=args.only, tail=args.tail,
                          jobs=args.jobs)
    if args.command == "bench":
        from repro.bench.runner import run_bench

        mode = "full" if args.full else "quick"
        return run_bench(mode=mode, only=args.only,
                         baseline=args.baseline, out_dir=args.out,
                         jobs=args.jobs)
    raise AssertionError(f"unhandled command {args.command}")


if __name__ == "__main__":
    sys.exit(main())
