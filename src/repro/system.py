"""One-call assembly of a complete simulated system.

``System.build(SystemConfig(scheme="copy", cores=16))`` wires together a
machine, kernel allocators, the IOMMU (unless the scheme is ``no-iommu``),
the chosen DMA protection scheme, a multi-queue 40 Gb/s NIC, and its
driver — one RX/TX queue pair per core, as the paper configures its
testbed (§6 "Methodology").

This is the main entry point for examples and the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.dma.api import DmaApi
from repro.dma.registry import create_dma_api
from repro.hw.machine import Machine
from repro.iommu.iommu import Iommu
from repro.kalloc.slab import KernelAllocators
from repro.net.driver import NicDriver
from repro.net.nic import Nic
from repro.obs.context import Observability
from repro.sim.costmodel import CostModel

#: PCI-ish device id given to the NIC.
NIC_DEVICE_ID = 0x40


@dataclass
class SystemConfig:
    """Everything needed to stand up a system under test."""

    scheme: str = "copy"
    cores: int = 1
    numa_nodes: int = 2
    nic_queues: Optional[int] = None   # default: one per core
    rx_ring_size: int = 512
    tx_ring_size: int = 512
    rx_buf_size: int = 2048
    use_copy_hints: bool = True
    keep_frames: bool = False
    cost: Optional[CostModel] = None
    iotlb_capacity: int = 4096
    scheme_kwargs: Dict[str, Any] = field(default_factory=dict)
    #: Observability context (tracer + metrics); None → disabled.
    obs: Optional[Observability] = None
    #: Fault injector (see repro.faults); None → disabled.
    faults: Optional[Any] = None

    def resolved_queues(self) -> int:
        return self.nic_queues if self.nic_queues is not None else self.cores


class System:
    """A fully wired simulated host + NIC under one protection scheme."""

    def __init__(self, config: SystemConfig, machine: Machine,
                 allocators: KernelAllocators, iommu: Optional[Iommu],
                 dma_api: DmaApi, nic: Nic, driver: NicDriver):
        self.config = config
        self.machine = machine
        self.allocators = allocators
        self.iommu = iommu
        self.dma_api = dma_api
        self.nic = nic
        self.driver = driver
        self._queues_ready = False

    @classmethod
    def build(cls, config: SystemConfig) -> "System":
        machine = Machine.build(cores=config.cores,
                                numa_nodes=min(config.numa_nodes,
                                               config.cores),
                                cost=config.cost, obs=config.obs,
                                faults=config.faults)
        allocators = KernelAllocators(machine)
        iommu = (None if config.scheme == "no-iommu"
                 else Iommu(machine, iotlb_capacity=config.iotlb_capacity))
        dma_api = create_dma_api(config.scheme, machine, iommu,
                                 NIC_DEVICE_ID, allocators,
                                 **config.scheme_kwargs)
        nic = Nic(device_id=NIC_DEVICE_ID, port=dma_api.port(),
                  num_queues=config.resolved_queues(),
                  keep_frames=config.keep_frames)
        nic.faults = machine.faults
        driver = NicDriver(machine, allocators, dma_api, nic,
                           rx_ring_size=config.rx_ring_size,
                           tx_ring_size=config.tx_ring_size,
                           rx_buf_size=config.rx_buf_size,
                           use_copy_hints=config.use_copy_hints)
        return cls(config, machine, allocators, iommu, dma_api, nic, driver)

    # ------------------------------------------------------------------
    def setup_queues(self) -> None:
        """Bring up one queue per core, each on its own core (and node)."""
        if self._queues_ready:
            return
        for qid in range(self.config.resolved_queues()):
            core = self.machine.core(qid % self.machine.num_cores)
            self.driver.setup_queue(core, qid)
        self._queues_ready = True

    def teardown_queues(self) -> None:
        if not self._queues_ready:
            return
        for qid in range(self.config.resolved_queues()):
            core = self.machine.core(qid % self.machine.num_cores)
            self.driver.teardown_queue(core, qid)
        self._queues_ready = False

    @property
    def cost(self) -> CostModel:
        return self.machine.cost
