"""netperf-style workloads: TCP_STREAM (RX and TX) and TCP_RR.

These drive the simulated system the way the paper's §6 benchmarks drive
the testbed:

* **TCP_STREAM RX** — the evaluated machine receives MTU frames at the
  offered load (bounded by the sender's syscall rate for small messages —
  §6 footnote 6 — and by the 40 Gb/s line otherwise), one netperf
  instance (queue + core) per core.
* **TCP_STREAM TX** — the evaluated machine transmits; TSO passes up to
  64 KB chunks to the NIC, so large-message TX is dominated by per-chunk
  costs (including, for ``copy``, the 64 KB shadow memcpy — Fig. 5b).
* **TCP_RR** — single-connection request/response; reports the mean
  round-trip latency and the CPU spent per transaction (Figures 9/10).

Each run returns a :class:`~repro.stats.results.RunResult` whose
breakdown uses the same categories as the paper's stacked bars.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.hw.cpu import CAT_COPY_USER, CAT_OTHER, Core, merge_breakdowns
from repro.hw.locks import SharedResource
from repro.obs.context import Observability
from repro.obs.requests import REQ_RR
from repro.sim.costmodel import CostModel
from repro.sim.engine import UNIT_DONE, CoreTask, GeneratorTask, Scheduler
from repro.sim.units import (
    CPU_FREQ_HZ,
    TCP_MSS,
    TSO_MAX_BYTES,
    cycles_to_us,
    gbps_to_bytes_per_cycle,
    us_to_cycles,
)
from repro.stats.results import RunResult
from repro.system import System, SystemConfig
from repro.net.packets import build_frame, max_payload, segment_payload

#: Message sizes swept by the paper's figures.
PAPER_MESSAGE_SIZES = (64, 256, 1024, 4096, 16384, 65536)

#: TX pipeline depth: how far (in cycles) the CPU may run ahead of the
#: wire before blocking in send() on a full socket buffer.
_TX_BACKLOG_CYCLES = us_to_cycles(100.0)

#: RR receive coalescing (LRO/GRO): frames merged per RX buffer.
_RR_GRO_FRAMES = 8


@dataclass
class StreamConfig:
    """Parameters of one TCP_STREAM measurement."""

    scheme: str = "copy"
    direction: str = "rx"              # "rx" or "tx"
    message_size: int = 16384
    cores: int = 1
    units_per_core: int = 2000         # segments (rx) / messages (tx)
    warmup_units: int = 300
    use_copy_hints: bool = True
    cost: Optional[CostModel] = None
    scheme_kwargs: Dict[str, object] = field(default_factory=dict)
    obs: Optional[Observability] = None

    def __post_init__(self) -> None:
        if self.direction not in ("rx", "tx"):
            raise ConfigurationError(f"bad direction {self.direction!r}")
        if self.message_size < 1:
            raise ConfigurationError("message_size must be positive")


def _build_system(cfg: StreamConfig, rx_buf_size: int = 2048) -> System:
    system = System.build(SystemConfig(
        scheme=cfg.scheme, cores=cfg.cores,
        rx_buf_size=rx_buf_size,
        use_copy_hints=cfg.use_copy_hints,
        cost=cfg.cost,
        scheme_kwargs=dict(cfg.scheme_kwargs),
        obs=cfg.obs,
    ))
    system.setup_queues()
    return system


def _collect(system: System, cfg_scheme: str, workload: str,
             params: Dict[str, object], units: int, payload_bytes: int,
             start_wall: int) -> RunResult:
    machine = system.machine
    wall = machine.wall_clock() - start_wall
    result = RunResult(
        scheme=cfg_scheme, workload=workload, params=params,
        units=units, payload_bytes=payload_bytes,
        wall_cycles=wall,
        busy_cycles=sum(c.busy_cycles for c in machine.cores),
        cores=machine.num_cores,
        breakdown_cycles=dict(merge_breakdowns(machine.cores)),
    )
    result.extras["iotlb"] = (vars(system.iommu.iotlb.stats).copy()
                              if system.iommu else {})
    pool = getattr(system.dma_api, "pool", None)
    if pool is not None:
        result.extras["pool"] = vars(pool.stats).copy()
    invq = system.iommu.invalidation_queue if system.iommu else None
    if invq is not None:
        result.extras["inv_lock_wait_cycles"] = invq.lock.stats.total_wait_cycles
        result.extras["sync_invalidations"] = invq.sync_invalidations
        result.extras["batch_flushes"] = invq.batch_flushes
        # Hardware-side queueing decomposition the scalability
        # observatory reads (arrivals + service vs queue delay).
        hw = invq.hardware
        result.extras["inv_hw_completions"] = hw.completions
        result.extras["inv_hw_service_cycles"] = hw.total_service_cycles
        result.extras["inv_hw_queue_delay_cycles"] = hw.queue_delay_cycles
    samples = getattr(system.dma_api, "window_samples", None)
    if samples:
        result.extras["window_mean_us"] = cycles_to_us(
            sum(samples) / len(samples))
        result.extras["window_max_us"] = cycles_to_us(max(samples))
    obs = machine.obs
    if obs.enabled:
        if system.iommu is not None:
            from repro.obs.metrics import record_iotlb_stats

            record_iotlb_stats(obs.metrics, machine.wall_clock(),
                               result.extras["iotlb"],
                               system.iommu.iotlb.stats.hit_rate)
        result.extras["metrics"] = obs.metrics.snapshot()
        result.extras["exposure"] = obs.exposure.summary()
        result.extras["requests"] = obs.requests.summary()
        result.extras["locks"] = obs.locks.snapshot()
    return result


# ----------------------------------------------------------------------
# TCP_STREAM receive.
# ----------------------------------------------------------------------
def run_tcp_stream_rx(cfg: StreamConfig) -> RunResult:
    """The evaluated machine as netperf *receiver* (Figures 3 and 6)."""
    system = _build_system(cfg)
    machine, cost = system.machine, system.cost

    # Wire segments: messages below the MSS coalesce into full segments
    # (the sender's kernel does this; the sender's syscall rate is then
    # the limiting factor for throughput).  Messages above the MSS arrive
    # as their own segment runs.
    if cfg.message_size >= TCP_MSS:
        seg_sizes = segment_payload(cfg.message_size)
    else:
        seg_sizes = [TCP_MSS]
    frames = {size: build_frame(size) for size in set(seg_sizes)}
    # Offered load per core/instance: the per-instance sender syscall
    # ceiling, capped by this core's share of the line rate.
    per_core_offered_bytes_per_sec = min(
        cost.netperf_sender_msgs_per_sec * cfg.message_size,
        cost.nic_rx_line_gbps * 1e9 / 8 / cfg.cores,
    )
    per_core_bytes_per_cycle = per_core_offered_bytes_per_sec / CPU_FREQ_HZ

    syscall_per_segment = cfg.message_size < TCP_MSS

    class _RxState:
        __slots__ = ("next_arrival", "seg_index", "units", "bytes")

        def __init__(self) -> None:
            self.next_arrival = 0.0
            self.seg_index = 0
            self.units = 0
            self.bytes = 0

    states = {core.cid: _RxState() for core in machine.cores}
    measuring = {"on": False}
    totals = {"units": 0, "bytes": 0}

    def make_step(core: Core, limit: int):
        state = states[core.cid]
        qid = core.cid
        total_units = limit

        def step(c: Core) -> bool:
            payload = seg_sizes[state.seg_index % len(seg_sizes)]
            state.seg_index += 1
            interval = payload / per_core_bytes_per_cycle
            state.next_arrival += interval
            if c.now < state.next_arrival:
                c.advance_to(int(state.next_arrival))
            elif state.next_arrival < c.now - 64 * interval:
                # The receiver cannot keep up; arrivals back up at the
                # NIC (and would be dropped) — keep the pacer near the
                # core clock instead of accumulating unbounded backlog.
                state.next_arrival = c.now - 64 * interval
            got = system.driver.receive_one(c, qid, frames[payload])
            if got is None:
                raise ConfigurationError("NIC dropped a paced frame")
            # Socket/stack costs above the driver.
            c.charge(cost.copy_to_user_cycles(payload), CAT_COPY_USER)
            c.charge(cost.rx_other_cycles, CAT_OTHER)
            if syscall_per_segment:
                # Sender-limited regime: the receiver blocks between
                # segments, paying a wakeup + recv() per arrival.
                c.charge(cost.wakeup_cycles + cost.syscall_cycles, CAT_OTHER)
            elif state.seg_index % len(seg_sizes) == 0:
                c.charge(cost.syscall_cycles, CAT_OTHER)
            state.units += 1
            if measuring["on"]:
                totals["units"] += 1
                totals["bytes"] += payload
            return state.units < total_units

        return step

    # Warmup phase: a fixed unit count *per core*, so the measured phase
    # starts with every core holding the same amount of remaining work.
    obs = machine.obs
    machine.sync_clocks()
    if obs.enabled:
        obs.phase_begin("warmup", machine.wall_clock())
    Scheduler([CoreTask(core=c, step=make_step(c, cfg.warmup_units),
                        name=f"rx{c.cid}-warm") for c in machine.cores],
              obs=obs).run()
    if obs.enabled:
        obs.phase_end(machine.wall_clock(),
                      busy_cycles=sum(c.busy_cycles for c in machine.cores),
                      breakdown=dict(merge_breakdowns(machine.cores)))
    machine.reset_accounting()
    start = machine.sync_clocks()
    for state in states.values():
        state.next_arrival = float(start)
    measuring["on"] = True
    if obs.enabled:
        obs.phase_begin("measure", start)
    total = cfg.warmup_units + cfg.units_per_core
    Scheduler([CoreTask(core=c, step=make_step(c, total),
                        name=f"rx{c.cid}") for c in machine.cores],
              obs=obs).run()
    if obs.enabled:
        obs.phase_end(machine.wall_clock(),
                      busy_cycles=sum(c.busy_cycles for c in machine.cores),
                      breakdown=dict(merge_breakdowns(machine.cores)))
    params = {"message_size": cfg.message_size, "cores": cfg.cores,
              "direction": "rx"}
    result = _collect(system, cfg.scheme, "tcp_stream_rx", params,
                      totals["units"], totals["bytes"], start)
    system.teardown_queues()
    return result


# ----------------------------------------------------------------------
# TCP_STREAM transmit.
# ----------------------------------------------------------------------
def run_tcp_stream_tx(cfg: StreamConfig) -> RunResult:
    """The evaluated machine as netperf *transmitter* (Figures 4 and 7)."""
    system = _build_system(cfg)
    machine, cost = system.machine, system.cost
    wire = SharedResource("tx-wire")
    line_bytes_per_cycle = gbps_to_bytes_per_cycle(cost.nic_tx_line_gbps)

    chunk_sizes = _tx_chunks(cfg.message_size)
    npages_per_msg = max(1, math.ceil(cfg.message_size / 4096))
    # Delayed ACKs: the peer acknowledges every other TSO chunk; each ACK
    # is a real (54-byte) inbound frame that takes the full RX DMA path —
    # including the protection scheme's map/unmap costs.
    ack_frame = build_frame(0)

    # Messages below the MSS coalesce in the socket (Nagle/TSQ): the DMA
    # chunk — and hence the per-chunk protection cost — is per MSS
    # segment, amortized over many small sends.  That is why the paper's
    # Fig. 4 shows all schemes performing comparably below 512 B.
    coalescing = cfg.message_size < TCP_MSS

    class _TxState:
        __slots__ = ("units", "bytes", "accum")

        def __init__(self) -> None:
            self.units = 0
            self.bytes = 0
            self.accum = 0

    states = {core.cid: _TxState() for core in machine.cores}
    measuring = {"on": False}
    totals = {"units": 0, "bytes": 0}

    chunk_counter = {"n": 0}

    def _emit_chunk(c: Core, qid: int, chunk: int):
        # Generator: yields between the transmit DMA cycle and the ACK's
        # RX DMA cycle — each takes the invalidation lock under strict
        # protection, and fine-grained interleaving keeps the timestamp
        # lock model accurate (see GeneratorTask).
        system.driver.transmit_one(c, qid, chunk)
        c.charge(cost.ack_process_cycles, CAT_OTHER)
        yield
        chunk_counter["n"] += 1
        if chunk_counter["n"] % 2 == 0:
            system.driver.receive_one(c, qid, ack_frame)
            yield
        # Wire pacing: block in send() when the socket buffer (the
        # allowed backlog) is full.
        done = wire.occupy(c.now, round(chunk / line_bytes_per_cycle))
        if done - c.now > _TX_BACKLOG_CYCLES:
            c.advance_to(done - _TX_BACKLOG_CYCLES)

    def worker(c: Core, limit: int):
        state = states[c.cid]
        qid = c.cid
        while state.units < limit:
            # send() syscall: user copy + TCP segmentation bookkeeping.
            c.charge(cost.syscall_cycles, CAT_OTHER)
            c.charge(cost.copy_to_user_cycles(cfg.message_size),
                     CAT_COPY_USER)
            c.charge(cost.tcp_tx_fixed_cycles, CAT_OTHER)
            c.charge(cost.tcp_tx_per_page_cycles * npages_per_msg, CAT_OTHER)
            if coalescing:
                state.accum += cfg.message_size
                while state.accum >= TCP_MSS:
                    yield from _emit_chunk(c, qid, TCP_MSS)
                    state.accum -= TCP_MSS
            else:
                for chunk in chunk_sizes:
                    yield from _emit_chunk(c, qid, chunk)
            state.units += 1
            if measuring["on"]:
                totals["units"] += 1
                totals["bytes"] += cfg.message_size
            yield UNIT_DONE

    obs = machine.obs
    machine.sync_clocks()
    if obs.enabled:
        obs.phase_begin("warmup", machine.wall_clock())
    Scheduler([GeneratorTask(core=c, gen=worker(c, cfg.warmup_units),
                             name=f"tx{c.cid}-warm")
               for c in machine.cores], obs=obs).run()
    if obs.enabled:
        obs.phase_end(machine.wall_clock(),
                      busy_cycles=sum(c.busy_cycles for c in machine.cores),
                      breakdown=dict(merge_breakdowns(machine.cores)))
    machine.reset_accounting()
    start = machine.sync_clocks()
    measuring["on"] = True
    if obs.enabled:
        obs.phase_begin("measure", start)
    total = cfg.warmup_units + cfg.units_per_core
    Scheduler([GeneratorTask(core=c, gen=worker(c, total),
                             name=f"tx{c.cid}") for c in machine.cores],
              obs=obs).run()
    if obs.enabled:
        obs.phase_end(machine.wall_clock(),
                      busy_cycles=sum(c.busy_cycles for c in machine.cores),
                      breakdown=dict(merge_breakdowns(machine.cores)))
    # The wire may still be draining the backlog when the last send
    # returns; throughput accounts for the drain.
    end = max(machine.wall_clock(), wire.busy_until)
    for core in machine.cores:
        core.advance_to(end)
    params = {"message_size": cfg.message_size, "cores": cfg.cores,
              "direction": "tx"}
    result = _collect(system, cfg.scheme, "tcp_stream_tx", params,
                      totals["units"], totals["bytes"], start)
    system.teardown_queues()
    return result


def _tx_chunks(message_size: int) -> List[int]:
    """TSO chunking: a message becomes ≤64 KB DMA chunks."""
    full, rest = divmod(message_size, TSO_MAX_BYTES)
    chunks = [TSO_MAX_BYTES] * full
    if rest:
        chunks.append(rest)
    return chunks


def run_tcp_stream(cfg: StreamConfig) -> RunResult:
    """Dispatch on ``cfg.direction``."""
    if cfg.direction == "rx":
        return run_tcp_stream_rx(cfg)
    return run_tcp_stream_tx(cfg)


# ----------------------------------------------------------------------
# TCP_RR — request/response latency (Figures 9 and 10).
# ----------------------------------------------------------------------
@dataclass
class RRConfig:
    """Parameters of one TCP_RR measurement (single core, single flow)."""

    scheme: str = "copy"
    message_size: int = 64
    transactions: int = 400
    warmup_transactions: int = 50
    use_copy_hints: bool = True
    cost: Optional[CostModel] = None
    scheme_kwargs: Dict[str, object] = field(default_factory=dict)
    obs: Optional[Observability] = None


def run_tcp_rr(cfg: RRConfig) -> RunResult:
    """Closed-loop request/response: one transaction in flight at a time.

    The remote end is the (unprotected) traffic generator; its CPU time
    is estimated with the same stack model minus protection costs.
    """
    stream_like = StreamConfig(scheme=cfg.scheme, cores=1,
                               use_copy_hints=cfg.use_copy_hints,
                               cost=cfg.cost,
                               scheme_kwargs=cfg.scheme_kwargs,
                               obs=cfg.obs)
    # LRO configuration: RR coalesces inbound frames into 16 KB buffers.
    system = _build_system(stream_like, rx_buf_size=16384)
    machine, cost = system.machine, system.cost
    core = machine.core(0)
    size = cfg.message_size

    aggr_payloads = _gro_aggregates(size)
    frames = {p: build_frame(p, mtu=p + 60) for p in set(aggr_payloads)}
    wire_cycles = round(size / gbps_to_bytes_per_cycle(40.0))
    npages_per_msg = max(1, math.ceil(size / 4096))
    client_cpu = _client_cpu_cycles(cost, size)

    latencies: List[int] = []
    measuring = False
    payload_bytes = 0

    obs_ctx = machine.obs

    def transaction() -> None:
        nonlocal payload_bytes
        t0 = core.now
        # Request propagates: NIC/PCIe latency + serialization.
        core.advance_to(t0 + cost.wire_latency_cycles + wire_cycles)
        if obs_ctx.enabled:
            # One rr request spans the server-side turnaround; the
            # driver's rx/tx requests fold into it as stages.
            obs_ctx.requests.begin(core, REQ_RR, message_size=size)
        for payload in aggr_payloads:
            if system.driver.receive_one(core, 0, frames[payload]) is None:
                raise ConfigurationError("RR frame dropped")
        core.charge(cost.copy_to_user_cycles(size), CAT_COPY_USER)
        core.charge(cost.rx_other_cycles, CAT_OTHER)
        core.charge(cost.wakeup_cycles, CAT_OTHER)
        core.charge(cost.syscall_cycles, CAT_OTHER)     # recv()
        # Build and send the response.
        core.charge(cost.syscall_cycles, CAT_OTHER)     # send()
        core.charge(cost.copy_to_user_cycles(size), CAT_COPY_USER)
        core.charge(cost.tcp_tx_fixed_cycles, CAT_OTHER)
        core.charge(cost.tcp_tx_per_page_cycles * npages_per_msg, CAT_OTHER)
        for chunk in _tx_chunks(size):
            system.driver.transmit_one(core, 0, chunk)
        if obs_ctx.enabled:
            # Ends when the response hits the wire; the client-side
            # turnaround below is not the server's latency.
            obs_ctx.requests.end(core)
        # Response propagates to the client, which turns it around.
        rtt_end = (core.now + cost.wire_latency_cycles + wire_cycles
                   + client_cpu + cost.wakeup_cycles)
        if measuring:
            latencies.append(rtt_end - t0)
            payload_bytes += 2 * size
        core.advance_to(rtt_end)

    obs = machine.obs
    if obs.enabled:
        obs.phase_begin("warmup", machine.wall_clock())
    for _ in range(cfg.warmup_transactions):
        transaction()
    if obs.enabled:
        obs.phase_end(machine.wall_clock(),
                      busy_cycles=sum(c.busy_cycles for c in machine.cores),
                      breakdown=dict(merge_breakdowns(machine.cores)))
    machine.reset_accounting()
    start = machine.sync_clocks()
    measuring = True
    if obs.enabled:
        obs.phase_begin("measure", start)
    for _ in range(cfg.transactions):
        transaction()
    if obs.enabled:
        obs.phase_end(machine.wall_clock(),
                      busy_cycles=sum(c.busy_cycles for c in machine.cores),
                      breakdown=dict(merge_breakdowns(machine.cores)))

    params = {"message_size": size, "cores": 1}
    result = _collect(system, cfg.scheme, "tcp_rr", params,
                      cfg.transactions, payload_bytes, start)
    result.latency_us = (cycles_to_us(sum(latencies) / len(latencies))
                         if latencies else 0.0)
    system.teardown_queues()
    return result


def _gro_aggregates(size: int) -> List[int]:
    """Split ``size`` inbound bytes into LRO/GRO aggregates."""
    per_aggregate = _RR_GRO_FRAMES * TCP_MSS
    aggregates: List[int] = []
    remaining = size
    while remaining > 0:
        aggregates.append(min(remaining, per_aggregate))
        remaining -= per_aggregate
    return aggregates or [size]


def _client_cpu_cycles(cost: CostModel, size: int) -> int:
    """Traffic-generator turnaround estimate (no IOMMU on that side)."""
    naggr = len(_gro_aggregates(size))
    rx = naggr * (cost.rx_parse_cycles + cost.rx_other_cycles
                  + cost.rx_refill_cycles)
    rx += cost.copy_to_user_cycles(size)
    tx = (cost.syscall_cycles * 2 + cost.tcp_tx_fixed_cycles
          + cost.tcp_tx_per_page_cycles * max(1, math.ceil(size / 4096))
          + cost.copy_to_user_cycles(size))
    return rx + tx
