"""memcached + memslap application workload (paper Figure 11).

One memcached instance per core (the paper runs 16 to avoid memcached's
internal lock contention), loaded by memslap's default mix: 64-byte keys,
1 KB values, 90% GET / 10% SET.  Each transaction exercises the full
datapath: a real request frame through the RX DMA path, a hash-table
lookup/update against an actual in-memory store, and a real response
through the TX DMA path — so every protection scheme pays its true
per-transaction costs.

Aggregated transactions/s and CPU utilization are reported; identity+
collapses here because every transaction needs (at least) two IOTLB
invalidations through the global queue lock.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.hw.cpu import CAT_COPY_USER, CAT_OTHER, Core
from repro.obs.context import Observability
from repro.obs.requests import REQ_MEMCACHED
from repro.sim.costmodel import CostModel
from repro.sim.engine import UNIT_DONE, GeneratorTask, Scheduler
from repro.sim.units import CPU_FREQ_HZ
from repro.seeding import derive_seed
from repro.stats.results import RunResult
from repro.net.packets import build_frame
from repro.workloads.netperf import _build_system, _collect, StreamConfig

#: memslap defaults (§6 "Benchmarks").
DEFAULT_KEY_SIZE = 64
DEFAULT_VALUE_SIZE = 1024
DEFAULT_GET_FRACTION = 0.9


class KeyValueStore:
    """A miniature memcached: a bounded hash map of bytes → bytes."""

    def __init__(self, max_items: int = 1 << 20):
        self._data: Dict[bytes, bytes] = {}
        self.max_items = max_items
        self.hits = 0
        self.misses = 0

    def set(self, key: bytes, value: bytes) -> None:
        if len(self._data) >= self.max_items and key not in self._data:
            # Trivial eviction: drop an arbitrary item (LRU is out of
            # scope; eviction order does not affect the measured path).
            self._data.pop(next(iter(self._data)))
        self._data[key] = value

    def get(self, key: bytes) -> Optional[bytes]:
        value = self._data.get(key)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def __len__(self) -> int:
        return len(self._data)


@dataclass
class MemcachedConfig:
    """Parameters of one memcached/memslap measurement."""

    scheme: str = "copy"
    cores: int = 16
    transactions_per_core: int = 600
    warmup_transactions: int = 100
    key_size: int = DEFAULT_KEY_SIZE
    value_size: int = DEFAULT_VALUE_SIZE
    get_fraction: float = DEFAULT_GET_FRACTION
    keys: int = 2048
    seed: int = 20160402          # ASPLOS'16 presentation date
    use_copy_hints: bool = True
    cost: Optional[CostModel] = None
    scheme_kwargs: Dict[str, object] = field(default_factory=dict)
    obs: Optional["Observability"] = None


def run_memcached(cfg: MemcachedConfig) -> RunResult:
    """Run the Figure 11 workload; returns aggregate transactions/s."""
    if not 0.0 <= cfg.get_fraction <= 1.0:
        raise ConfigurationError("get_fraction must be in [0, 1]")
    stream_like = StreamConfig(scheme=cfg.scheme, cores=cfg.cores,
                               use_copy_hints=cfg.use_copy_hints,
                               cost=cfg.cost,
                               scheme_kwargs=cfg.scheme_kwargs,
                               obs=cfg.obs)
    system = _build_system(stream_like)
    machine, cost = system.machine, system.cost

    stores = [KeyValueStore() for _ in range(cfg.cores)]
    key_space = [f"key-{i:08d}".encode().ljust(cfg.key_size, b"k")
                 for i in range(cfg.keys)]
    value = bytes(range(256)) * (cfg.value_size // 256 + 1)
    value = value[:cfg.value_size]

    # Pre-populate so GETs hit (memslap preloads the same way).
    for store in stores:
        for key in key_space[:256]:
            store.set(key, value)

    # memslap protocol overheads: request = verb + key (+ value for SET);
    # response = value (+ header) for GET, short status for SET.
    get_req = build_frame(cfg.key_size + 40)
    set_req_payload = cfg.key_size + cfg.value_size + 48
    set_req = build_frame(min(set_req_payload, 1400))
    get_resp_bytes = cfg.value_size + 64
    set_resp_bytes = 48

    # Offered load: memslap's aggregate ceiling, split across instances.
    per_core_interval = CPU_FREQ_HZ / (cost.memslap_offered_tps / cfg.cores)

    class _State:
        __slots__ = ("units", "next_arrival", "rng")

        def __init__(self, seed: int) -> None:
            self.units = 0
            self.next_arrival = 0.0
            self.rng = random.Random(seed)

    states = {c.cid: _State(derive_seed(cfg.seed, "memcached", c.cid))
              for c in machine.cores}
    measuring = {"on": False}
    totals = {"units": 0, "bytes": 0}

    def worker(c: Core, limit: int):
        # A generator task: yields between the RX half, the application
        # half, and the TX half of each transaction so that lock waits
        # interleave correctly across cores (see GeneratorTask).
        state = states[c.cid]
        store = stores[c.cid]
        qid = c.cid
        while state.units < limit:
            state.next_arrival += per_core_interval
            if c.now < state.next_arrival:
                c.advance_to(int(state.next_arrival))
            elif state.next_arrival < c.now - 64 * per_core_interval:
                state.next_arrival = c.now - 64 * per_core_interval
            is_get = state.rng.random() < cfg.get_fraction
            key = key_space[state.rng.randrange(256 if is_get else cfg.keys)]
            # Request arrives through the RX DMA path.
            req = get_req if is_get else set_req
            if obs.enabled:
                # One memcached request per transaction; the driver's
                # rx/tx requests fold into it as stages.
                obs.requests.begin(c, REQ_MEMCACHED,
                                   op="get" if is_get else "set")
            if system.driver.receive_one(c, qid, req) is None:
                raise ConfigurationError("memcached request dropped")
            yield
            c.charge(cost.syscall_cycles, CAT_OTHER)          # recv/epoll
            c.charge(cost.memcached_app_cycles, CAT_OTHER)    # hash + LRU
            if is_get:
                store.get(key)
                resp_bytes = get_resp_bytes
            else:
                store.set(key, value)
                resp_bytes = set_resp_bytes
            yield
            # Response leaves through the TX DMA path.
            c.charge(cost.syscall_cycles, CAT_OTHER)          # send
            c.charge(cost.copy_to_user_cycles(resp_bytes), CAT_COPY_USER)
            system.driver.transmit_one(c, qid, resp_bytes)
            if obs.enabled:
                obs.requests.end(c)
            state.units += 1
            if measuring["on"]:
                totals["units"] += 1
                totals["bytes"] += resp_bytes + (req and len(req))
            yield UNIT_DONE

    obs = machine.obs
    machine.sync_clocks()
    if obs.enabled:
        obs.phase_begin("warmup", machine.wall_clock())
    Scheduler([GeneratorTask(core=c, gen=worker(c, cfg.warmup_transactions),
                             name=f"mc{c.cid}-warm")
               for c in machine.cores], obs=obs).run()
    if obs.enabled:
        obs.phase_end(machine.wall_clock(),
                      busy_cycles=sum(c.busy_cycles for c in machine.cores))
    machine.reset_accounting()
    start = machine.sync_clocks()
    for state in states.values():
        state.next_arrival = float(start)
    measuring["on"] = True
    if obs.enabled:
        obs.phase_begin("measure", start)
    total = cfg.warmup_transactions + cfg.transactions_per_core
    Scheduler([GeneratorTask(core=c, gen=worker(c, total),
                             name=f"mc{c.cid}") for c in machine.cores],
              obs=obs).run()
    if obs.enabled:
        obs.phase_end(machine.wall_clock(),
                      busy_cycles=sum(c.busy_cycles for c in machine.cores))

    params = {"cores": cfg.cores, "value_size": cfg.value_size,
              "get_fraction": cfg.get_fraction}
    result = _collect(system, cfg.scheme, "memcached", params,
                      totals["units"], totals["bytes"], start)
    if result.wall_cycles > 0:
        result.transactions_per_sec = (totals["units"] * CPU_FREQ_HZ
                                       / result.wall_cycles)
    result.extras["store_hits"] = sum(s.hits for s in stores)
    result.extras["store_misses"] = sum(s.misses for s in stores)
    system.teardown_queues()
    return result
