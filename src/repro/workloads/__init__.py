"""Workload drivers: netperf TCP_STREAM / TCP_RR and memcached+memslap."""

from repro.workloads.memcached import KeyValueStore, MemcachedConfig, run_memcached
from repro.workloads.storage import StorageConfig, run_storage
from repro.workloads.netperf import (
    PAPER_MESSAGE_SIZES,
    RRConfig,
    StreamConfig,
    run_tcp_rr,
    run_tcp_stream,
    run_tcp_stream_rx,
    run_tcp_stream_tx,
)

__all__ = [
    "StreamConfig",
    "RRConfig",
    "MemcachedConfig",
    "run_tcp_stream",
    "run_tcp_stream_rx",
    "run_tcp_stream_tx",
    "run_tcp_rr",
    "run_memcached",
    "StorageConfig",
    "run_storage",
    "KeyValueStore",
    "PAPER_MESSAGE_SIZES",
]
