"""Fleet workload: open-loop, diurnal, composite traffic for SLO runs.

The paper's benchmarks ask "how fast is one workload at a fixed offered
load"; the ROADMAP's north star asks a different question — *how many
users can a scheme serve while still meeting its objective?*  This
workload supplies the traffic side of that question: an **open-loop**
arrival process (arrivals keep coming whether or not the server keeps
up, so queueing delay explodes past the capacity knee instead of
politely backing off) driving millions of short-lived connections
whose per-connection work is drawn from the repo's existing generators:

* ``kv``   — a memcached-style GET/SET transaction (RX request frame,
  hash-table work, TX response) — the bulk of fleet traffic;
* ``burst``— a run of MTU frames through the RX DMA path (a client
  uploading, cf. TCP_STREAM RX);
* ``bulk`` — one TSO-sized chunk through the TX DMA path (a download);
* ``io``   — a 4 KB block read through a second DMA API on a storage
  device id (the §5.5 storage path), riding the same machine.

Arrivals follow a **seeded diurnal curve**: a sinusoid (period ≪ run
length, so a short simulation still sees peaks and troughs) with
deterministic burst spikes layered on top, all derived from
:func:`repro.seeding.derive_seed` so the same seed replays the same
day, on any platform, in any process.

When the arrival pacer falls more than a backlog bound behind, the
excess arrivals are **shed** — counted as drops against the SLO
(``obs.slo.note_drop``), exactly what a listen-queue overflow does to
real fleets.  Every completed request carries its ``queue_wait`` (cycles
past the intended arrival) in the request meta, so the SLO recorder
judges *offered-to-completed* latency, not just service time.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.hw.cpu import CAT_COPY_USER, CAT_OTHER, Core
from repro.dma.api import DmaDirection
from repro.dma.registry import create_dma_api
from repro.kalloc.slab import KBuffer
from repro.obs.context import Observability
from repro.obs.requests import REQ_MEMCACHED, REQ_RX, REQ_STORAGE, REQ_TX
from repro.obs.slo import SloObjective
from repro.seeding import derive_seed
from repro.sim.costmodel import CostModel
from repro.sim.engine import UNIT_DONE, GeneratorTask, Scheduler
from repro.sim.units import CPU_FREQ_HZ, PAGE_SIZE, TCP_MSS, us_to_cycles
from repro.stats.results import RunResult
from repro.net.packets import build_frame
from repro.workloads.memcached import KeyValueStore
from repro.workloads.netperf import _build_system, _collect, StreamConfig

#: Storage rides the same machine under its own device id (cf.
#: repro.workloads.storage; the NIC keeps 0x40).
_FLEET_STORAGE_DEVICE_ID = 0x50

#: The connection kinds the fleet can serve (mix names must be these).
CONN_KINDS = ("kv", "burst", "bulk", "io")

#: Connection mix: (name, weight).  Weights are normalized; the order is
#: part of the deterministic schedule.
DEFAULT_MIX: Tuple[Tuple[str, float], ...] = (
    ("kv", 0.6), ("burst", 0.2), ("bulk", 0.1), ("io", 0.1),
)

#: Load-curve resolution: the diurnal/burst multiplier is a step
#: function over this many slots (repeating past the end).
_CURVE_SLOTS = 64

#: Backlog bound, in inter-arrival intervals: arrivals further behind
#: than this are shed (dropped connections), like a listen-queue cap.
_BACKLOG_INTERVALS = 64

_RX_BURST_FRAMES = 3
_BULK_CHUNK = 16384
_IO_BLOCK = 4096
_BLOCK_LAYER_CYCLES = us_to_cycles(1.8)


def default_fleet_objective() -> SloObjective:
    """The default fleet SLO: p99 ≤ 60 us per 200 us window, 99.9%
    availability, 240 us client timeout."""
    return SloObjective(p99_us=60.0, availability=0.999, window_us=200.0,
                        timeout_us=240.0)


@dataclass
class FleetConfig:
    """Parameters of one fleet run at a fixed user population."""

    scheme: str = "copy"
    cores: int = 2
    #: Concurrent user population; offered load is
    #: ``users * per_user_tps`` transactions/s at curve multiplier 1.
    users: int = 1_000_000
    per_user_tps: float = 0.05
    duration_us: float = 2000.0
    warmup_us: float = 300.0
    seed: int = 2016
    objective: SloObjective = field(default_factory=default_fleet_objective)
    #: Diurnal curve: multiplier 1 ± amplitude over one period.
    diurnal_amplitude: float = 0.3
    diurnal_period_us: float = 1000.0
    #: Burst spikes: per-slot probability and peak extra multiplier.
    burst_rate: float = 0.15
    burst_gain: float = 0.6
    mix: Tuple[Tuple[str, float], ...] = DEFAULT_MIX
    use_copy_hints: bool = True
    cost: Optional[CostModel] = None
    scheme_kwargs: Dict[str, object] = field(default_factory=dict)
    obs: Optional[Observability] = None

    def __post_init__(self) -> None:
        if self.users < 1:
            raise ConfigurationError("fleet needs at least one user")
        if self.per_user_tps <= 0:
            raise ConfigurationError("per_user_tps must be positive")
        if self.duration_us <= 0 or self.warmup_us < 0:
            raise ConfigurationError("bad fleet phase durations")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ConfigurationError("diurnal amplitude must be in [0, 1)")
        total = sum(w for _, w in self.mix)
        if total <= 0 or any(w < 0 for _, w in self.mix):
            raise ConfigurationError(f"bad connection mix: {self.mix}")
        unknown = [name for name, _ in self.mix if name not in CONN_KINDS]
        if unknown:
            raise ConfigurationError(
                f"unknown connection kind(s) {unknown}; "
                f"choices: {', '.join(CONN_KINDS)}")


def build_load_curve(cfg: FleetConfig) -> List[float]:
    """The per-slot arrival-rate multiplier (deterministic from seed).

    A diurnal sinusoid sampled at :data:`_CURVE_SLOTS` points plus
    seeded burst spikes; the workload indexes it by elapsed measured
    time (mod the curve length), so a capacity search replays the same
    day at every offered load.
    """
    rng = random.Random(derive_seed(cfg.seed, "fleet", "bursts"))
    slot_us = cfg.diurnal_period_us / _CURVE_SLOTS
    curve: List[float] = []
    for i in range(_CURVE_SLOTS):
        t_us = (i + 0.5) * slot_us
        mult = 1.0 + cfg.diurnal_amplitude * math.sin(
            2.0 * math.pi * t_us / cfg.diurnal_period_us)
        if rng.random() < cfg.burst_rate:
            mult += cfg.burst_gain * rng.random()
        curve.append(max(0.05, mult))
    return curve


def run_fleet(cfg: FleetConfig) -> RunResult:
    """Run the fleet at ``cfg.users``; returns throughput + SLO extras."""
    stream_like = StreamConfig(scheme=cfg.scheme, cores=cfg.cores,
                               use_copy_hints=cfg.use_copy_hints,
                               cost=cfg.cost,
                               scheme_kwargs=cfg.scheme_kwargs,
                               obs=cfg.obs)
    system = _build_system(stream_like)
    machine, cost = system.machine, system.cost
    obs = machine.obs

    # Storage path: its own DMA API on the same machine/IOMMU, so block
    # I/O pays the same scheme's protection costs as the NIC path.
    io_api = create_dma_api(cfg.scheme, machine, system.iommu,
                            _FLEET_STORAGE_DEVICE_ID, system.allocators,
                            **dict(cfg.scheme_kwargs))
    io_port = io_api.port()
    npages = math.ceil((_IO_BLOCK + 512) / PAGE_SIZE)
    order = max(0, (npages - 1).bit_length())
    io_buffers = {}
    for core in machine.cores:
        pa = system.allocators.buddies[core.numa_node].alloc_pages(order)
        io_buffers[core.cid] = KBuffer(pa=pa + 512, size=_IO_BLOCK,
                                       node=core.numa_node)
    io_payload = (bytes(range(256)) * (_IO_BLOCK // 256))[:_IO_BLOCK]

    # kv (memcached-style) material.
    stores = [KeyValueStore() for _ in range(cfg.cores)]
    key_space = [f"key-{i:08d}".encode().ljust(64, b"k")
                 for i in range(256)]
    kv_value = (bytes(range(256)) * 5)[:1024]
    for store in stores:
        for key in key_space:
            store.set(key, kv_value)
    kv_req = build_frame(104)            # verb + 64 B key
    kv_resp_bytes = 1024 + 64
    mtu_frame = build_frame(TCP_MSS)

    curve = build_load_curve(cfg)
    slot_cycles = max(1, us_to_cycles(cfg.diurnal_period_us) // _CURVE_SLOTS)
    base_interval = CPU_FREQ_HZ / (cfg.users * cfg.per_user_tps / cfg.cores)

    names = [name for name, _ in cfg.mix]
    total_weight = sum(w for _, w in cfg.mix)
    cumulative: List[float] = []
    acc = 0.0
    for _, weight in cfg.mix:
        acc += weight / total_weight
        cumulative.append(acc)

    def pick_connection(rng: random.Random) -> str:
        roll = rng.random()
        for name, bound in zip(names, cumulative):
            if roll < bound:
                return name
        return names[-1]

    measuring = {"on": False}
    totals = {"units": 0, "bytes": 0}
    served_by_kind = {name: 0 for name in names}

    # ------------------------------------------------------------------
    # Per-connection service generators (driver rx/tx requests fold
    # into the outer fleet request as stages).
    # ------------------------------------------------------------------
    def serve_kv(c: Core, rng: random.Random) -> int:
        qid = c.cid
        store = stores[c.cid]
        is_get = rng.random() < 0.9
        key = key_space[rng.randrange(len(key_space))]
        if system.driver.receive_one(c, qid, kv_req) is None:
            raise ConfigurationError("fleet kv request dropped")
        yield
        c.charge(cost.syscall_cycles, CAT_OTHER)
        c.charge(cost.memcached_app_cycles, CAT_OTHER)
        if is_get:
            store.get(key)
            resp_bytes = kv_resp_bytes
        else:
            store.set(key, kv_value)
            resp_bytes = 48
        yield
        c.charge(cost.syscall_cycles, CAT_OTHER)
        c.charge(cost.copy_to_user_cycles(resp_bytes), CAT_COPY_USER)
        system.driver.transmit_one(c, qid, resp_bytes)
        return len(kv_req) + resp_bytes

    def serve_burst(c: Core, rng: random.Random) -> int:
        qid = c.cid
        for _ in range(_RX_BURST_FRAMES):
            if system.driver.receive_one(c, qid, mtu_frame) is None:
                raise ConfigurationError("fleet burst frame dropped")
            c.charge(cost.copy_to_user_cycles(TCP_MSS), CAT_COPY_USER)
            c.charge(cost.rx_other_cycles, CAT_OTHER)
            yield
        c.charge(cost.syscall_cycles, CAT_OTHER)
        return _RX_BURST_FRAMES * TCP_MSS

    def serve_bulk(c: Core, rng: random.Random) -> int:
        qid = c.cid
        c.charge(cost.syscall_cycles, CAT_OTHER)
        c.charge(cost.copy_to_user_cycles(_BULK_CHUNK), CAT_COPY_USER)
        c.charge(cost.tcp_tx_fixed_cycles, CAT_OTHER)
        yield
        system.driver.transmit_one(c, qid, _BULK_CHUNK)
        return _BULK_CHUNK

    def serve_io(c: Core, rng: random.Random) -> int:
        buf = io_buffers[c.cid]
        c.charge(_BLOCK_LAYER_CYCLES, CAT_OTHER)
        handle = io_api.dma_map(c, buf, DmaDirection.FROM_DEVICE)
        io_port.dma_write(handle.iova, io_payload)
        yield
        io_api.dma_unmap(c, handle)
        return _IO_BLOCK

    serve = {"kv": serve_kv, "burst": serve_burst, "bulk": serve_bulk,
             "io": serve_io}
    req_kind = {"kv": REQ_MEMCACHED, "burst": REQ_RX, "bulk": REQ_TX,
                "io": REQ_STORAGE}

    # ------------------------------------------------------------------
    # Open-loop pacer: one generator per core, duration-bounded.
    # ------------------------------------------------------------------
    def worker(c: Core, phase_start: int, phase_cycles: int):
        rng = random.Random(derive_seed(cfg.seed, "fleet", c.cid))
        phase_end = phase_start + phase_cycles
        next_arrival = float(phase_start)
        while c.now < phase_end:
            slot = ((c.now - phase_start) // slot_cycles) % _CURVE_SLOTS
            interval = base_interval / curve[slot]
            next_arrival += interval
            if c.now < next_arrival:
                c.advance_to(int(next_arrival))
            elif next_arrival < c.now - _BACKLOG_INTERVALS * interval:
                # Overloaded: shed the backlog beyond the bound.  Every
                # shed arrival is a dropped connection — an SLO bad
                # event, not a free pass.
                bound = c.now - _BACKLOG_INTERVALS * interval
                shed = int((bound - next_arrival) // interval) + 1
                next_arrival += shed * interval
                if obs.enabled and measuring["on"]:
                    obs.slo.note_drop(c.now, shed)
            queue_wait = max(0, c.now - int(next_arrival))
            kind = pick_connection(rng)
            if obs.enabled:
                obs.requests.begin(c, req_kind[kind], conn=kind,
                                   queue_wait=queue_wait)
            nbytes = yield from serve[kind](c, rng)
            if obs.enabled:
                obs.requests.end(c)
            if measuring["on"]:
                totals["units"] += 1
                totals["bytes"] += nbytes
                served_by_kind[kind] += 1
            yield UNIT_DONE

    warmup_cycles = us_to_cycles(cfg.warmup_us)
    duration_cycles = us_to_cycles(cfg.duration_us)

    machine.sync_clocks()
    if obs.enabled:
        obs.phase_begin("warmup", machine.wall_clock())
    warm_start = machine.wall_clock()
    Scheduler([GeneratorTask(core=c, gen=worker(c, warm_start,
                                                warmup_cycles),
                             name=f"fleet{c.cid}-warm")
               for c in machine.cores], obs=obs).run()
    if obs.enabled:
        obs.phase_end(machine.wall_clock(),
                      busy_cycles=sum(c.busy_cycles for c in machine.cores))
    machine.reset_accounting()
    start = machine.sync_clocks()
    measuring["on"] = True
    if obs.enabled:
        # Arm the SLO recorder for the measured phase only, so warmup
        # transients never count against the objective.
        obs.slo.configure(cfg.objective, start=start)
        obs.phase_begin("measure", start)
    Scheduler([GeneratorTask(core=c, gen=worker(c, start, duration_cycles),
                             name=f"fleet{c.cid}")
               for c in machine.cores], obs=obs).run()
    if obs.enabled:
        obs.slo.finalize(machine.wall_clock())
        obs.phase_end(machine.wall_clock(),
                      busy_cycles=sum(c.busy_cycles for c in machine.cores))

    params = {"users": cfg.users, "cores": cfg.cores,
              "duration_us": cfg.duration_us}
    result = _collect(system, cfg.scheme, "fleet", params,
                      totals["units"], totals["bytes"], start)
    if result.wall_cycles > 0:
        result.transactions_per_sec = (totals["units"] * CPU_FREQ_HZ
                                       / result.wall_cycles)
    result.extras["offered_tps"] = cfg.users * cfg.per_user_tps
    result.extras["load_curve"] = [round(m, 4) for m in curve]
    result.extras["served"] = dict(served_by_kind)
    if obs.enabled:
        result.extras["slo"] = obs.slo.summary()
    system.teardown_queues()
    return result
