"""Storage (SSD-style) workload — the paper's §5.5 motivation, executable.

§5.5 argues that huge DMA buffers come with *low* map/unmap rates: a
40 Gb/s NIC unmaps 1.7 M MTU buffers per second, while an SSD tops out
near 850 K IOPS for 4 KB reads (and far fewer for large blocks), so for
storage the per-unmap protection cost is amortized over much more data —
and for genuinely huge buffers the hybrid head/tail-copy path keeps copy
costs flat.

This workload drives a simple block device (reads and writes of a fixed
block size at a device-limited IOPS ceiling) through any protection
scheme, using the plain DMA API — no NIC involved.  Buffers are
allocated unaligned on purpose (sector offsets), so the §5.5 hybrid path
actually exercises its head/tail shadows for large blocks.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.dma.api import DmaDirection
from repro.dma.registry import create_dma_api
from repro.errors import ConfigurationError
from repro.hw.cpu import CAT_OTHER, Core, merge_breakdowns
from repro.hw.machine import Machine
from repro.iommu.iommu import Iommu
from repro.kalloc.slab import KBuffer, KernelAllocators
from repro.obs.context import Observability
from repro.obs.requests import REQ_STORAGE
from repro.sim.costmodel import CostModel
from repro.sim.engine import UNIT_DONE, GeneratorTask, Scheduler
from repro.sim.units import CPU_FREQ_HZ, PAGE_SIZE, us_to_cycles
from repro.seeding import derive_seed
from repro.stats.results import RunResult

#: Intel DC-series figures quoted by §5.5.
SSD_READ_IOPS_4K = 850_000.0
SSD_WRITE_IOPS_4K = 150_000.0

_STORAGE_DEVICE_ID = 0x50


@dataclass
class StorageConfig:
    """Parameters of one storage measurement."""

    scheme: str = "copy"
    block_size: int = 4096
    cores: int = 1
    read_fraction: float = 0.7
    ops_per_core: int = 400
    warmup_ops: int = 60
    #: Device ceiling in IOPS for this block size.  Defaults to the §5.5
    #: SSD numbers scaled by block size (bandwidth-limited beyond 4 KB).
    device_iops: Optional[float] = None
    seed: int = 55
    cost: Optional[CostModel] = None
    scheme_kwargs: Dict[str, object] = field(default_factory=dict)
    obs: Optional[Observability] = None

    def resolved_iops(self) -> float:
        if self.device_iops is not None:
            return self.device_iops
        mix = (self.read_fraction * SSD_READ_IOPS_4K
               + (1 - self.read_fraction) * SSD_WRITE_IOPS_4K)
        # Bandwidth-limited scaling past 4 KB blocks.
        return mix * min(1.0, 4096 / self.block_size)


#: Per-request block-layer CPU cost (submit + completion, bio handling).
_BLOCK_LAYER_CYCLES = us_to_cycles(1.8)


def run_storage(cfg: StorageConfig) -> RunResult:
    """Run the storage workload; returns achieved IOPS and bandwidth."""
    if cfg.block_size < 512:
        raise ConfigurationError("block size below one sector")
    if not 0.0 <= cfg.read_fraction <= 1.0:
        raise ConfigurationError("read_fraction must be in [0, 1]")
    machine = Machine.build(cores=cfg.cores,
                            numa_nodes=min(2, cfg.cores), cost=cfg.cost,
                            obs=cfg.obs)
    allocators = KernelAllocators(machine)
    iommu = None if cfg.scheme in ("no-iommu", "swiotlb") else Iommu(machine)
    api = create_dma_api(cfg.scheme, machine, iommu, _STORAGE_DEVICE_ID,
                         allocators, **dict(cfg.scheme_kwargs))
    port = api.port()

    # One unaligned I/O buffer per core, reused per request (bio pages).
    npages = math.ceil((cfg.block_size + 512) / PAGE_SIZE)
    order = max(0, (npages - 1).bit_length())
    buffers = {}
    for core in machine.cores:
        pa = allocators.buddies[core.numa_node].alloc_pages(order)
        buffers[core.cid] = KBuffer(pa=pa + 512, size=cfg.block_size,
                                    node=core.numa_node)
    payload = bytes(range(256)) * (cfg.block_size // 256 + 1)
    payload = payload[:cfg.block_size]

    interval = CPU_FREQ_HZ / (cfg.resolved_iops() / cfg.cores)
    measuring = {"on": False}
    totals = {"units": 0, "bytes": 0}

    def worker(core: Core, limit: int):
        rng = random.Random(derive_seed(cfg.seed, "storage", core.cid))
        buf = buffers[core.cid]
        done = 0
        next_arrival = float(core.now)
        while done < limit:
            next_arrival += interval
            if core.now < next_arrival:
                core.advance_to(int(next_arrival))
            elif next_arrival < core.now - 64 * interval:
                next_arrival = core.now - 64 * interval
            is_read = rng.random() < cfg.read_fraction
            if obs.enabled:
                obs.requests.begin(core, REQ_STORAGE,
                                   op="read" if is_read else "write",
                                   block_size=cfg.block_size)
            core.charge(_BLOCK_LAYER_CYCLES, CAT_OTHER)
            if is_read:
                handle = api.dma_map(core, buf, DmaDirection.FROM_DEVICE)
                port.dma_write(handle.iova, payload)
                yield
                api.dma_unmap(core, handle)
            else:
                machine.memory.write(buf.pa, payload)
                handle = api.dma_map(core, buf, DmaDirection.TO_DEVICE)
                port.dma_read(handle.iova, cfg.block_size)
                yield
                api.dma_unmap(core, handle)
            if obs.enabled:
                obs.requests.end(core)
            done += 1
            if measuring["on"]:
                totals["units"] += 1
                totals["bytes"] += cfg.block_size
            yield UNIT_DONE

    obs = machine.obs
    machine.sync_clocks()
    if obs.enabled:
        obs.phase_begin("warmup", machine.wall_clock())
    Scheduler([GeneratorTask(core=c, gen=worker(c, cfg.warmup_ops),
                             name=f"io{c.cid}-warm")
               for c in machine.cores], obs=obs).run()
    if obs.enabled:
        obs.phase_end(machine.wall_clock(),
                      busy_cycles=sum(c.busy_cycles for c in machine.cores))
    machine.reset_accounting()
    start = machine.sync_clocks()
    measuring["on"] = True
    total = cfg.warmup_ops + cfg.ops_per_core
    if obs.enabled:
        obs.phase_begin("measure", start)
    # Fresh generators continue against per-core state held in closures;
    # simplest is to run the measured quota directly.
    Scheduler([GeneratorTask(core=c, gen=worker(c, cfg.ops_per_core),
                             name=f"io{c.cid}") for c in machine.cores],
              obs=obs).run()
    if obs.enabled:
        obs.phase_end(machine.wall_clock(),
                      busy_cycles=sum(c.busy_cycles for c in machine.cores))

    wall = machine.wall_clock() - start
    result = RunResult(
        scheme=cfg.scheme, workload="storage",
        params={"block_size": cfg.block_size, "cores": cfg.cores,
                "read_fraction": cfg.read_fraction},
        units=totals["units"], payload_bytes=totals["bytes"],
        wall_cycles=wall,
        busy_cycles=sum(c.busy_cycles for c in machine.cores),
        cores=machine.num_cores,
        breakdown_cycles=dict(merge_breakdowns(machine.cores)),
    )
    if wall > 0:
        result.transactions_per_sec = totals["units"] * CPU_FREQ_HZ / wall
    result.extras["device_iops_ceiling"] = cfg.resolved_iops()
    if hasattr(api, "hybrid_maps"):
        result.extras["hybrid_maps"] = api.hybrid_maps
    if iommu is not None:
        result.extras["iotlb"] = vars(iommu.iotlb.stats).copy()
        invq = iommu.invalidation_queue
        result.extras["sync_invalidations"] = invq.sync_invalidations
        result.extras["inv_lock_wait_cycles"] = \
            invq.lock.stats.total_wait_cycles
        hw = invq.hardware
        result.extras["inv_hw_completions"] = hw.completions
        result.extras["inv_hw_service_cycles"] = hw.total_service_cycles
        result.extras["inv_hw_queue_delay_cycles"] = hw.queue_delay_cycles
    if obs.enabled:
        if iommu is not None:
            from repro.obs.metrics import record_iotlb_stats

            record_iotlb_stats(obs.metrics, machine.wall_clock(),
                               result.extras["iotlb"],
                               iommu.iotlb.stats.hit_rate)
        result.extras["metrics"] = obs.metrics.snapshot()
        result.extras["exposure"] = obs.exposure.summary()
        result.extras["requests"] = obs.requests.summary()
        result.extras["locks"] = obs.locks.snapshot()
    return result
