"""SWIOTLB — Linux's software bounce-buffer mode (paper §7, [2]).

Related work the paper distinguishes itself from: SWIOTLB also *copies*
DMA data through dedicated bounce buffers, but it exists to let devices
with limited addressing reach high memory — it makes **no use of the
IOMMU** and therefore provides **no protection whatsoever**: the device
can still DMA anywhere.  Implemented here so the comparison is
executable: the audit shows SWIOTLB failing every security column while
paying copy costs comparable to DMA shadowing's.

The bounce pool is a single contiguous low-memory region carved into
slots (Linux uses 2 KB "IO TLB" slabs); allocation is a simple
lock-protected bitmap-style free list — adequate for the comparison, and
true to the original's global-lock behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.dma.api import (
    CoherentBuffer,
    DmaApi,
    DmaDirection,
    DmaHandle,
    SchemeProperties,
)
from repro.errors import DmaApiError, PoolExhaustedError
from repro.faults.plan import SITE_POOL_GROW
from repro.hw.cpu import CAT_MEMCPY, CAT_OTHER, Core
from repro.hw.locks import SpinLock
from repro.hw.machine import Machine
from repro.iommu.iommu import PassthroughDmaPort
from repro.kalloc.slab import KBuffer, KernelAllocators
from repro.sim.units import PAGE_SHIFT, page_align_up

#: Linux's default IO TLB slot granularity.
SWIOTLB_SLOT_BYTES = 2048


@dataclass
class _Bounce:
    slot_start: int
    nslots: int
    bounce_pa: int


class SwiotlbDmaApi(DmaApi):
    """Bounce-buffer DMA API: copies like ``copy``, protects like nothing."""

    name = "swiotlb"
    properties = SchemeProperties(
        label="SWIOTLB (bounce buffers, no IOMMU)",
        iommu_protection=False,
        sub_page=False,
        no_window=False,
        single_core_perf=True,
        multi_core_perf=False,  # single global pool lock
    )

    def __init__(self, machine: Machine, allocators: KernelAllocators,
                 pool_slots: int = 32 * 1024, node: int = 0):
        super().__init__()
        self.machine = machine
        self.cost = machine.cost
        self.allocators = allocators
        self._port = PassthroughDmaPort(machine)
        npages = (pool_slots * SWIOTLB_SLOT_BYTES) >> PAGE_SHIFT
        order = max(0, (npages - 1).bit_length())
        self.pool_base = allocators.buddies[node].alloc_pages(order)
        self.pool_slots = pool_slots
        self._free_runs: List[tuple[int, int]] = [(0, pool_slots)]
        self._lock = SpinLock("swiotlb", machine.cost, obs=machine.obs)
        self._coherent: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def _alloc_slots(self, core: Core, nslots: int) -> int:
        faults = self.machine.faults
        if faults.enabled and faults.fires(SITE_POOL_GROW, core):
            raise PoolExhaustedError(
                "injected SWIOTLB pool exhaustion (fault plan)")
        self._lock.acquire(core)
        core.charge(180, CAT_OTHER)  # bitmap scan
        # LIFO exact-fit first (recently freed slots are cache warm),
        # then first-fit.
        for i in range(len(self._free_runs) - 1, -1, -1):
            if self._free_runs[i][1] == nslots:
                start = self._free_runs.pop(i)[0]
                self._lock.release(core)
                return start
        for i, (start, length) in enumerate(self._free_runs):
            if length >= nslots:
                if length == nslots:
                    del self._free_runs[i]
                else:
                    self._free_runs[i] = (start + nslots, length - nslots)
                self._lock.release(core)
                return start
        self._lock.release(core)
        raise PoolExhaustedError("SWIOTLB pool exhausted")

    def _free_slots(self, core: Core, start: int, nslots: int) -> None:
        self._lock.acquire(core)
        core.charge(120, CAT_OTHER)
        self._free_runs.append((start, nslots))
        # Keep the run list tidy: merge adjacent runs occasionally.
        if len(self._free_runs) > 64:
            self._free_runs.sort()
            merged = [self._free_runs[0]]
            for s, l in self._free_runs[1:]:
                ps, pl = merged[-1]
                if ps + pl == s:
                    merged[-1] = (ps, pl + l)
                else:
                    merged.append((s, l))
            self._free_runs = merged
        self._lock.release(core)

    # ------------------------------------------------------------------
    def _map(self, core: Core, buf: KBuffer,
             direction: DmaDirection) -> tuple[DmaHandle, _Bounce]:
        nslots = max(1, -(-buf.size // SWIOTLB_SLOT_BYTES))
        slot = self._alloc_slots(core, nslots)
        bounce_pa = self.pool_base + slot * SWIOTLB_SLOT_BYTES
        if direction.device_reads:
            core.charge(self.cost.memcpy_cycles(buf.size), CAT_MEMCPY)
            pollution = self.cost.pollution_cycles(buf.size)
            if pollution:
                core.charge(pollution, CAT_OTHER)
            self.machine.memory.copy(bounce_pa, buf.pa, buf.size)
        handle = DmaHandle(iova=bounce_pa, size=buf.size,
                           direction=direction)
        return handle, _Bounce(slot_start=slot, nslots=nslots,
                               bounce_pa=bounce_pa)

    def _unmap(self, core: Core, buf: KBuffer, handle: DmaHandle,
               cookie: _Bounce) -> None:
        if handle.direction.device_writes:
            core.charge(self.cost.memcpy_cycles(handle.size), CAT_MEMCPY)
            pollution = self.cost.pollution_cycles(handle.size)
            if pollution:
                core.charge(pollution, CAT_OTHER)
            self.machine.memory.copy(buf.pa, cookie.bounce_pa, handle.size)
        self._free_slots(core, cookie.slot_start, cookie.nslots)

    # ------------------------------------------------------------------
    def dma_alloc_coherent(self, core: Core, size: int,
                           node: int = 0) -> CoherentBuffer:
        pages = max(1, page_align_up(size) >> PAGE_SHIFT)
        order = max(0, (pages - 1).bit_length())
        pa = self.allocators.buddies[node].alloc_pages(order, core)
        kbuf = KBuffer(pa=pa, size=size, node=node)
        self._coherent[pa] = node
        self.stats.coherent_allocs += 1
        return CoherentBuffer(kbuf=kbuf, iova=pa, size=size)

    def dma_free_coherent(self, core: Core, buf: CoherentBuffer) -> None:
        node = self._coherent.pop(buf.kbuf.pa, None)
        if node is None:
            raise DmaApiError(f"free of unknown coherent buffer "
                              f"{buf.iova:#x}")
        self.allocators.buddies[node].free_pages(buf.kbuf.pa, core)

    def port(self) -> PassthroughDmaPort:
        return self._port
