"""Self-invalidating IOMMU mappings — Basu et al. (paper §7, [10]).

The hardware proposal the paper cites as related work: an IOMMU whose
mappings *self-destruct* after a threshold of time or DMAs, "obviating
the need to destroy the mapping in software".  The paper notes "this
hardware is not currently available" — but a simulator can build it, so
this module reproduces the proposal as an extension experiment:

* ``dma_map`` installs a mapping armed with a DMA budget and an expiry
  time;
* the (modeled) hardware revokes the mapping when either trips — the
  device-side translation path checks the armed limits;
* ``dma_unmap`` merely *disarms* bookkeeping: no page-table write, no
  IOTLB invalidation, no lock — software-side cost close to zero.

Security caveat, faithfully reproduced: between the unmap and the
hardware's self-destruction the mapping remains live, so a window
remains (bounded by the threshold, like deferred protection but enforced
by hardware).  Protection stays page granular.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.dma.api import (
    CoherentBuffer,
    DmaApi,
    DmaDirection,
    DmaHandle,
    SchemeProperties,
)
from repro.errors import DmaApiError, IommuFault, ReproError
from repro.hw.cpu import CAT_OTHER, CAT_PT_MGMT, Core
from repro.hw.machine import Machine
from repro.iommu.iommu import Domain, Iommu
from repro.iommu.page_table import Perm, PteEntry
from repro.iova.allocators import IdentityIovaAllocator
from repro.kalloc.slab import KBuffer, KernelAllocators
from repro.sim.units import PAGE_SHIFT, PAGE_SIZE, page_align_up, us_to_cycles


@dataclass
class _ArmedMapping:
    iova_base: int
    npages: int
    dma_budget: int
    expires_at: int
    disarmed: bool = False


class _SelfInvalidatingPort:
    """Device port that enforces the armed DMA/time budgets in 'hardware'."""

    def __init__(self, api: "SelfInvalidatingDmaApi"):
        self.api = api

    def _check(self, iova: int, size: int, now: int) -> None:
        first = iova >> PAGE_SHIFT
        last = (iova + max(size, 1) - 1) >> PAGE_SHIFT
        for page in range(first, last + 1):
            armed = self.api._armed_by_page.get(page)
            if armed is None:
                continue  # coherent mapping or already revoked
            if armed.dma_budget <= 0 or now >= armed.expires_at:
                self.api._revoke(armed)
                raise IommuFault(self.api.domain.device_id,
                                 iova, is_write=False,
                                 reason="self-invalidated mapping")
            armed.dma_budget -= 1

    def dma_read(self, iova: int, size: int) -> bytes:
        self._check(iova, size, self.api.hardware_clock())
        return self.api._inner_port.dma_read(iova, size)

    def dma_write(self, iova: int, data: bytes) -> None:
        self._check(iova, len(data), self.api.hardware_clock())
        self.api._inner_port.dma_write(iova, data)


class SelfInvalidatingDmaApi(DmaApi):
    """[10]-style IOMMU: mappings die on their own; unmap is ~free."""

    name = "self-invalidating"
    properties = SchemeProperties(
        label="self-invalidating IOMMU [Basu et al.]",
        iommu_protection=True,
        sub_page=False,
        no_window=False,   # bounded hardware window remains
        single_core_perf=True,
        multi_core_perf=True,
    )

    def __init__(self, machine: Machine, iommu: Iommu, device_id: int,
                 allocators: KernelAllocators,
                 dma_budget: int = 8,
                 lifetime_us: float = 100.0):
        super().__init__()
        self.machine = machine
        self.cost = machine.cost
        self.iommu = iommu
        self.domain: Domain = iommu.attach_device(device_id)
        self.domain_id = self.domain.domain_id
        self.allocators = allocators
        self.dma_budget = dma_budget
        self.lifetime_cycles = us_to_cycles(lifetime_us)
        self.iova_allocator = IdentityIovaAllocator(machine.cost)
        from repro.iommu.iommu import TranslatingDmaPort

        self._inner_port = TranslatingDmaPort(iommu, self.domain)
        self._port = _SelfInvalidatingPort(self)
        self._armed_by_page: Dict[int, _ArmedMapping] = {}
        self._page_rc: Dict[int, int] = {}
        self._coherent: Dict[int, CoherentBuffer] = {}
        self.self_invalidations = 0

    def hardware_clock(self) -> int:
        """The hardware's notion of 'now' — the latest core clock."""
        return self.machine.wall_clock()

    # ------------------------------------------------------------------
    def _map(self, core: Core, buf: KBuffer,
             direction: DmaDirection) -> tuple[DmaHandle, _ArmedMapping]:
        pa_base = (buf.pa >> PAGE_SHIFT) << PAGE_SHIFT
        offset = buf.pa - pa_base
        npages = ((offset + buf.size - 1) >> PAGE_SHIFT) + 1
        iova_base = self.iova_allocator.alloc(npages, core, pa_base)
        armed = _ArmedMapping(
            iova_base=iova_base, npages=npages,
            dma_budget=self.dma_budget,
            expires_at=core.now + self.lifetime_cycles)
        built: list[tuple[int, _ArmedMapping | None, bool]] = []
        try:
            for i in range(npages):
                page = (iova_base >> PAGE_SHIFT) + i
                rc = self._page_rc.get(page, 0)
                mapped = False
                if rc == 0:
                    page_pa = ((pa_base >> PAGE_SHIFT) + i) << PAGE_SHIFT
                    self.iommu.map_range(self.domain, page << PAGE_SHIFT,
                                         page_pa, PAGE_SIZE, Perm.RW, core)
                    mapped = True
                self._page_rc[page] = rc + 1
                # Overlapping mappings on one page share the latest arming —
                # a real hazard of per-page hardware counters, kept visible.
                prev = self._armed_by_page.get(page)
                self._armed_by_page[page] = armed
                built.append((page, prev, mapped))
        except ReproError:
            # Unwind the partially armed pages: restore the previous
            # arming, drop the refcounts, and tear down any PTEs this
            # map installed (with strict invalidation).
            for page, prev, mapped in reversed(built):
                if prev is None:
                    self._armed_by_page.pop(page, None)
                else:
                    self._armed_by_page[page] = prev
                rc = self._page_rc.get(page, 1) - 1
                if rc <= 0:
                    self._page_rc.pop(page, None)
                else:
                    self._page_rc[page] = rc
                if mapped:
                    self.iommu.unmap_range(self.domain, page << PAGE_SHIFT,
                                           PAGE_SIZE, core)
                    self.iommu.invalidation_queue.invalidate_sync(
                        core, self.domain.domain_id, page, 1)
            raise
        # Arming the counters is one extra descriptor write.
        core.charge(60, CAT_OTHER)
        return (DmaHandle(iova=iova_base + offset, size=buf.size,
                          direction=direction), armed)

    def _unmap(self, core: Core, buf: KBuffer, handle: DmaHandle,
               cookie: _ArmedMapping) -> None:
        # The whole point: software does (almost) nothing.  The hardware
        # will revoke the mapping when the budget/lifetime trips.
        cookie.disarmed = True
        core.charge(30, CAT_OTHER)

    def _revoke(self, armed: _ArmedMapping) -> None:
        """Hardware-side revocation: drop the PTEs + IOTLB entries."""
        obs = self.machine.obs
        now = self.machine.wall_clock() if obs.enabled else 0
        first = armed.iova_base >> PAGE_SHIFT
        for i in range(armed.npages):
            page = first + i
            if self._armed_by_page.get(page) is armed:
                del self._armed_by_page[page]
                self._page_rc.pop(page, None)
                if self.domain.page_table.lookup(page) is not None:
                    self.domain.page_table.unmap_page(page)
                    if obs.enabled:
                        # Bypasses Iommu.unmap_range, so the exposure
                        # accountant hears about it here; the hardware
                        # drops PTE and IOTLB entry in one action.
                        obs.exposure.note_unmap_range(
                            now, self.domain.domain_id,
                            page << PAGE_SHIFT, PAGE_SIZE, {page})
        self.iommu.iotlb.invalidate_pages(self.domain.domain_id, first,
                                          armed.npages)
        if obs.enabled:
            obs.exposure.note_invalidate_pages(now, self.domain.domain_id,
                                               first, armed.npages)
        self.self_invalidations += 1
        # Identity IOVAs need no recycling bookkeeping.

    def expire_all(self) -> int:
        """Force every armed mapping past its lifetime (test/audit hook —
        models the hardware clock advancing past the thresholds)."""
        revoked = 0
        for armed in list({id(a): a for a in
                           self._armed_by_page.values()}.values()):
            self._revoke(armed)
            revoked += 1
        return revoked

    # ------------------------------------------------------------------
    def dma_alloc_coherent(self, core: Core, size: int,
                           node: int = 0) -> CoherentBuffer:
        pages = max(1, page_align_up(size) >> PAGE_SHIFT)
        order = max(0, (pages - 1).bit_length())
        pa = self.allocators.buddies[node].alloc_pages(order, core)
        npages = 1 << order
        iova = self.iova_allocator.alloc(npages, core, pa)
        # Coherent mappings are *not* armed: they must live until freed.
        try:
            self.iommu.map_range(self.domain, iova, pa, npages << PAGE_SHIFT,
                                 Perm.RW, core, kind="dedicated")
        except ReproError:
            self.allocators.buddies[node].free_pages(pa, core)
            raise
        kbuf = KBuffer(pa=pa, size=size, node=node)
        buf = CoherentBuffer(kbuf=kbuf, iova=iova, size=size)
        self._coherent[iova] = buf
        self.stats.coherent_allocs += 1
        return buf

    def dma_free_coherent(self, core: Core, buf: CoherentBuffer) -> None:
        if self._coherent.pop(buf.iova, None) is None:
            raise DmaApiError(f"free of unknown coherent buffer {buf.iova:#x}")
        pages = max(1, page_align_up(buf.size) >> PAGE_SHIFT)
        order = max(0, (pages - 1).bit_length())
        npages = 1 << order
        self.iommu.unmap_range(self.domain, buf.iova, npages << PAGE_SHIFT,
                               core)
        self.iommu.invalidation_queue.invalidate_sync(
            core, self.domain.domain_id, buf.iova >> PAGE_SHIFT, npages)
        self.allocators.buddies[buf.kbuf.node].free_pages(buf.kbuf.pa, core)

    def port(self) -> _SelfInvalidatingPort:
        return self._port
