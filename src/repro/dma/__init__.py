"""DMA API layer: the driver-facing interface plus all protection schemes."""

from repro.dma.api import (
    CoherentBuffer,
    DmaApi,
    DmaApiStats,
    DmaDirection,
    DmaHandle,
    SchemeProperties,
)
from repro.dma.direct import NoIommuDmaApi
from repro.dma.registry import (
    ALL_SCHEMES,
    FIGURE_SCHEMES,
    PAPER_ALIASES,
    create_dma_api,
    scheme_properties,
)
from repro.dma.zerocopy import DeferredZeroCopyDmaApi, StrictZeroCopyDmaApi

__all__ = [
    "DmaApi",
    "DmaDirection",
    "DmaHandle",
    "CoherentBuffer",
    "DmaApiStats",
    "SchemeProperties",
    "NoIommuDmaApi",
    "StrictZeroCopyDmaApi",
    "DeferredZeroCopyDmaApi",
    "create_dma_api",
    "scheme_properties",
    "ALL_SCHEMES",
    "FIGURE_SCHEMES",
    "PAPER_ALIASES",
]
