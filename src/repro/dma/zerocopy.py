"""Zero-copy IOMMU protection schemes: strict and deferred (§2.2.1).

These are the baselines the paper compares against.  Both map the OS
buffer's pages into the device's domain at ``dma_map`` and clear the
page-table entries at ``dma_unmap``; they differ in *when the IOTLB is
invalidated*:

* **Strict** (`identity+`, `linux-strict`, …): synchronously on every
  unmap, under the global invalidation-queue lock.  Secure at page
  granularity, but the invalidation cost (and its lock) is the paper's
  Figure 1/6/8 bottleneck.
* **Deferred** (`identity-`, `linux-deferred`, …): invalidations are
  batched — flushed only after ``deferred_batch_size`` (250) unmaps or a
  10 ms timeout — so a window remains in which the device can reach
  unmapped buffers through stale IOTLB entries.

Both operate at page granularity, so data co-located with a DMA buffer on
the same page is exposed for the mapping's lifetime (§4).  Page mappings
are reference-counted, since sub-page buffers (or identity mappings of
neighbouring buffers) can legitimately overlap on a page.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.dma.api import (
    CoherentBuffer,
    DmaApi,
    DmaDirection,
    DmaHandle,
    SchemeProperties,
)
from repro.errors import DmaApiError, ReproError
from repro.hw.cpu import CAT_OTHER, CAT_PT_MGMT, Core
from repro.hw.locks import NullLock, SpinLock
from repro.hw.machine import Machine
from repro.iommu.invalidation import PendingInvalidation
from repro.iommu.iommu import Domain, Iommu, TranslatingDmaPort
from repro.iommu.page_table import Perm, PteEntry
from repro.iova.base import IovaAllocator
from repro.kalloc.slab import KBuffer, KernelAllocators
from repro.obs.trace import EV_INV_DEFER
from repro.sim.units import PAGE_SHIFT, PAGE_SIZE, page_align_up


@dataclass
class _PageRef:
    refcount: int
    perm: Perm


@dataclass
class _MapCookie:
    """Unmap-time context recorded at map time."""

    iova_base: int     # page-aligned base of the IOVA range
    npages: int
    pa_base: int       # page-aligned base of the physical range


class ZeroCopyDmaApi(DmaApi):
    """Shared machinery for the strict and deferred zero-copy schemes."""

    def __init__(self, machine: Machine, iommu: Iommu, device_id: int,
                 allocators: KernelAllocators, iova_allocator: IovaAllocator):
        super().__init__()
        self.machine = machine
        self.cost = machine.cost
        self.iommu = iommu
        self.domain: Domain = iommu.attach_device(device_id)
        self.domain_id = self.domain.domain_id
        self.allocators = allocators
        self.iova_allocator = iova_allocator
        self._port = TranslatingDmaPort(iommu, self.domain)
        # iova_page -> refcount/perm for live page mappings.
        self._page_refs: Dict[int, _PageRef] = {}
        self._coherent: Dict[int, CoherentBuffer] = {}
        # Scalable-invalidation knobs (set by subclasses; see the
        # identity-strict-percore/-prefetch registry entries).
        #: Use ranged descriptors (coalesced runs) on the strict path.
        self.ranged = False
        #: Post IOTLB prefetch hints for each page at map time.
        self.prefetch = False

    # ------------------------------------------------------------------
    def _map(self, core: Core, buf: KBuffer,
             direction: DmaDirection) -> tuple[DmaHandle, _MapCookie]:
        perm = direction.perm
        pa_base = (buf.pa >> PAGE_SHIFT) << PAGE_SHIFT
        offset = buf.pa - pa_base
        npages = ((offset + buf.size - 1) >> PAGE_SHIFT) + 1
        iova_base = self.iova_allocator.alloc(npages, core, pa_base)
        mapped = 0
        try:
            for i in range(npages):
                self._map_one_page(core, (iova_base >> PAGE_SHIFT) + i,
                                   (pa_base >> PAGE_SHIFT) + i, perm)
                mapped += 1
        except ReproError:
            # Page-table failure mid-map: release the pages already
            # mapped (with a strict invalidation — over-invalidating is
            # safe for both policies) and give the IOVA range back.
            cleared: List[int] = []
            first = iova_base >> PAGE_SHIFT
            for i in range(mapped):
                page = first + i
                ref = self._page_refs[page]
                ref.refcount -= 1
                if ref.refcount == 0:
                    del self._page_refs[page]
                    self.iommu.unmap_range(self.domain, page << PAGE_SHIFT,
                                           PAGE_SIZE, core)
                    cleared.append(page)
            if cleared:
                self._invalidate_cleared(core, cleared)
            self.iova_allocator.free(iova_base, npages, core)
            raise
        handle = DmaHandle(iova=iova_base + offset, size=buf.size,
                           direction=direction)
        cookie = _MapCookie(iova_base=iova_base, npages=npages,
                            pa_base=pa_base)
        return handle, cookie

    def _invalidate_cleared(self, core: Core, cleared: List[int]) -> None:
        """Strictly invalidate the cleared pages of one unmap.

        ``cleared`` can have holes when refcounted sharing keeps some of
        the range's pages mapped; the ranged path names exactly the
        cleared pages, while the classic path posts one descriptor over
        the covering range (over-invalidation — safe, and what a
        single-descriptor submission can express).
        """
        if self.ranged:
            self.iommu.invalidation_queue.invalidate_ranges_sync(
                core, self.domain.domain_id, cleared)
        else:
            self.iommu.invalidation_queue.invalidate_sync(
                core, self.domain.domain_id, cleared[0], len(cleared))

    def _prefetch_page(self, core: Core, iova_page: int, pfn: int,
                       perm: Perm) -> None:
        """Post an IOTLB prefetch hint for a just-installed mapping."""
        self.iommu.iotlb.prefetch(self.domain.domain_id, iova_page,
                                  PteEntry(pfn=pfn, perm=perm))
        core.charge(self.cost.iotlb_prefetch_cycles, CAT_PT_MGMT)

    def _map_one_page(self, core: Core, iova_page: int, pfn: int,
                      perm: Perm) -> None:
        ref = self._page_refs.get(iova_page)
        if ref is None:
            stale = self.iommu.iotlb.peek(self.domain.domain_id, iova_page)
            if stale is not None and not (stale.pfn == pfn
                                          and (stale.perm & perm) == perm):
                # Deferred unmap left a stale cached translation for this
                # IOVA page (possible under identity mapping, where IOVAs
                # are reused immediately).  A stale entry for the same
                # frame with covering rights translates correctly — that
                # is deferred mode's gamble — but an *incompatible* one
                # would misdirect or fault the new DMA, so it must be
                # invalidated before the fresh mapping is installed.
                self.iommu.invalidation_queue.invalidate_sync(
                    core, self.domain.domain_id, iova_page, 1)
            self.iommu.map_range(self.domain, iova_page << PAGE_SHIFT,
                                 pfn << PAGE_SHIFT, PAGE_SIZE, perm, core)
            self._page_refs[iova_page] = _PageRef(refcount=1, perm=perm)
            if self.prefetch:
                self._prefetch_page(core, iova_page, pfn, perm)
            return
        # Overlapping mapping (e.g. two sub-page buffers under identity
        # mapping).  Widen permissions if needed — which is itself part of
        # the page-granularity security problem.
        ref.refcount += 1
        widened = ref.perm | perm
        if widened != ref.perm:
            self.domain.page_table.unmap_page(iova_page)
            self.domain.page_table.map_page(iova_page, pfn, widened)
            core.charge(self.cost.pt_map_cycles, CAT_OTHER)
            # The stale (narrower) IOTLB entry must go so the device sees
            # the widened rights.
            self.iommu.invalidation_queue.invalidate_sync(
                core, self.domain.domain_id, iova_page, 1)
            ref.perm = widened
            if self.prefetch:
                self._prefetch_page(core, iova_page, pfn, widened)

    def _unmap_pages(self, core: Core, cookie: _MapCookie) -> List[int]:
        """Drop page references; returns iova pages whose PTE was cleared."""
        cleared: List[int] = []
        first = cookie.iova_base >> PAGE_SHIFT
        for i in range(cookie.npages):
            page = first + i
            ref = self._page_refs.get(page)
            if ref is None:
                raise DmaApiError(f"unmap of untracked IOVA page {page:#x}")
            ref.refcount -= 1
            if ref.refcount == 0:
                del self._page_refs[page]
                self.iommu.unmap_range(self.domain, page << PAGE_SHIFT,
                                       PAGE_SIZE, core)
                cleared.append(page)
        return cleared

    # ------------------------------------------------------------------
    def dma_alloc_coherent(self, core: Core, size: int,
                           node: int = 0) -> CoherentBuffer:
        """Page-quantity allocation, permanently mapped RW (§2.2, §5.2)."""
        pages = max(1, page_align_up(size) >> PAGE_SHIFT)
        order = max(0, (pages - 1).bit_length())
        pa = self.allocators.buddies[node].alloc_pages(order, core)
        npages = 1 << order
        iova = self.iova_allocator.alloc(npages, core, pa)
        try:
            self.iommu.map_range(self.domain, iova, pa, npages << PAGE_SHIFT,
                                 Perm.RW, core, kind="dedicated")
        except ReproError:
            self.iova_allocator.free(iova, npages, core)
            self.allocators.buddies[node].free_pages(pa, core)
            raise
        kbuf = KBuffer(pa=pa, size=size, node=node)
        buf = CoherentBuffer(kbuf=kbuf, iova=iova, size=size)
        self._coherent[iova] = buf
        self.stats.coherent_allocs += 1
        return buf

    def dma_free_coherent(self, core: Core, buf: CoherentBuffer) -> None:
        """Unmap with *strict* semantics — infrequent, not perf critical (§5.2)."""
        if self._coherent.pop(buf.iova, None) is None:
            raise DmaApiError(f"free of unknown coherent buffer {buf.iova:#x}")
        pages = max(1, page_align_up(buf.size) >> PAGE_SHIFT)
        order = max(0, (pages - 1).bit_length())
        npages = 1 << order
        self.iommu.unmap_range(self.domain, buf.iova, npages << PAGE_SHIFT,
                               core)
        self.iommu.invalidation_queue.invalidate_sync(
            core, self.domain.domain_id, buf.iova >> PAGE_SHIFT, npages)
        self.iova_allocator.free(buf.iova, npages, core)
        self.allocators.buddies[buf.kbuf.node].free_pages(buf.kbuf.pa, core)

    def port(self) -> TranslatingDmaPort:
        return self._port


class StrictZeroCopyDmaApi(ZeroCopyDmaApi):
    """Strict protection: invalidate the IOTLB on every unmap.

    ``ranged=True`` posts coalesced ranged descriptors instead of one
    covering range, and ``prefetch=True`` hint-inserts each mapped
    page's translation into the IOTLB at map time — the scalable
    variants (identity-strict-percore / -prefetch) set these, usually
    together with the IOMMU's per-core invalidation queues.
    """

    def __init__(self, machine: Machine, iommu: Iommu, device_id: int,
                 allocators: KernelAllocators, iova_allocator: IovaAllocator,
                 name: str = "strict", properties: SchemeProperties | None = None,
                 ranged: bool = False, prefetch: bool = False):
        super().__init__(machine, iommu, device_id, allocators, iova_allocator)
        self.name = name
        self.ranged = ranged
        self.prefetch = prefetch
        self.properties = properties or SchemeProperties(
            label=name, iommu_protection=True, sub_page=False,
            no_window=True, single_core_perf=False, multi_core_perf=False,
        )

    def _unmap(self, core: Core, buf: KBuffer, handle: DmaHandle,
               cookie: _MapCookie) -> None:
        cleared = self._unmap_pages(core, cookie)
        if cleared:
            # One (possibly ranged) invalidation per unmap call.
            self._invalidate_cleared(core, cleared)
        self.iova_allocator.free(cookie.iova_base, cookie.npages, core)


class DeferredZeroCopyDmaApi(ZeroCopyDmaApi):
    """Deferred protection: batch invalidations (250 unmaps / 10 ms).

    ``per_core_batching=True`` models [42]'s scalable variant (identity−):
    each core keeps its own pending list.  ``False`` models stock Linux's
    single lock-protected global list (§2.2.1).
    """

    def __init__(self, machine: Machine, iommu: Iommu, device_id: int,
                 allocators: KernelAllocators, iova_allocator: IovaAllocator,
                 name: str = "deferred", per_core_batching: bool = True,
                 properties: SchemeProperties | None = None,
                 window_budget_cycles: int | None = None,
                 ranged_flush: bool = False):
        super().__init__(machine, iommu, device_id, allocators, iova_allocator)
        self.name = name
        self.per_core_batching = per_core_batching
        #: Oldest-pending-entry age that forces a flush.  Defaults to the
        #: classic 10 ms timeout; identity-deferred-bounded passes the
        #: cost model's 100 µs budget, capping the vulnerability window.
        self.window_budget_cycles = (
            window_budget_cycles if window_budget_cycles is not None
            else machine.cost.deferred_timeout_cycles)
        #: Flush with per-domain ranged descriptors instead of one
        #: global invalidation (see InvalidationQueue.flush_batch).
        self.ranged_flush = ranged_flush
        self.properties = properties or SchemeProperties(
            label=name, iommu_protection=True, sub_page=False,
            no_window=False, single_core_perf=True,
            multi_core_perf=per_core_batching,
        )
        ncores = machine.num_cores
        self._pending: List[List[PendingInvalidation]] = (
            [[] for _ in range(ncores)] if per_core_batching else [[]]
        )
        self._pending_iova_frees: List[List[tuple[int, int]]] = (
            [[] for _ in range(ncores)] if per_core_batching else [[]]
        )
        self._list_lock: SpinLock | NullLock = (
            NullLock("flush-list") if per_core_batching
            else SpinLock("flush-list", machine.cost, obs=machine.obs)
        )
        #: Measured vulnerability-window durations (cycles between an
        #: unmap and the flush that finally revoked its IOTLB entries).
        #: The paper observes this window can reach 10 ms (§3); here it
        #: is measured per unmap.  Bounded sample buffer.
        self.window_samples: List[int] = []
        self._max_window_samples = 100_000

    def _slot(self, core: Core) -> int:
        return core.cid if self.per_core_batching else 0

    def _unmap(self, core: Core, buf: KBuffer, handle: DmaHandle,
               cookie: _MapCookie) -> None:
        cleared = self._unmap_pages(core, cookie)
        slot = self._slot(core)
        self._list_lock.acquire(core)
        core.charge(self.cost.deferred_bookkeeping_cycles, CAT_OTHER)
        pending = self._pending[slot]
        if cleared:
            pending.append(PendingInvalidation(
                domain_id=self.domain.domain_id, iova_page=cleared[0],
                npages=len(cleared), queued_at=core.now))
            if self.obs.enabled:
                self.obs.tracer.emit(EV_INV_DEFER, core.now, core.cid,
                                     scheme=self.name, pages=len(cleared),
                                     slot=slot, queued=len(pending))
        # IOVA deallocation is deferred too (§2.2.1): the range must not
        # be reused while stale IOTLB entries can still reach it.
        self._pending_iova_frees[slot].append((cookie.iova_base,
                                               cookie.npages))
        must_flush = (
            len(pending) >= self.cost.deferred_batch_size
            or (pending and core.now - pending[0].queued_at
                >= self.window_budget_cycles)
        )
        self._list_lock.release(core)
        if must_flush:
            self._flush_slot(core, slot)

    def _flush_slot(self, core: Core, slot: int) -> None:
        self._list_lock.acquire(core)
        pending = self._pending[slot]
        frees = self._pending_iova_frees[slot]
        self._pending[slot] = []
        self._pending_iova_frees[slot] = []
        self._list_lock.release(core)
        self.iommu.invalidation_queue.flush_batch(core, pending,
                                                  ranged=self.ranged_flush)
        if len(self.window_samples) < self._max_window_samples:
            now = core.now
            self.window_samples.extend(now - p.queued_at for p in pending)
        if self.obs.enabled and pending:
            now = core.now
            window_hist = self.obs.metrics.histogram(
                "invalidation.window_cycles")
            for p in pending:
                window_hist.observe(now - p.queued_at)
        for iova, npages in frees:
            self.iova_allocator.free(iova, npages, core)

    def flush_deferred(self, core: Core) -> None:
        for slot in range(len(self._pending)):
            if self._pending[slot] or self._pending_iova_frees[slot]:
                self._flush_slot(core, slot)

    # ------------------------------------------------------------------
    # Introspection for the security audit.
    # ------------------------------------------------------------------
    @property
    def pending_invalidations(self) -> int:
        return sum(len(p) for p in self._pending)

    def window_open(self) -> bool:
        """Whether unmapped-but-reachable IOVAs currently exist."""
        return self.pending_invalidations > 0
