"""``no iommu`` baseline: bus address = physical address, no protection.

This is the paper's performance yardstick — the fastest possible
configuration and the one that is defenseless against DMA attacks.
``dma_map`` degenerates to returning the buffer's physical address; the
device's port bypasses translation entirely.
"""

from __future__ import annotations

from repro.dma.api import (
    CoherentBuffer,
    DmaApi,
    DmaDirection,
    DmaHandle,
    SchemeProperties,
)
from repro.hw.cpu import Core
from repro.hw.machine import Machine
from repro.iommu.iommu import PassthroughDmaPort
from repro.kalloc.slab import KBuffer, KernelAllocators
from repro.sim.units import PAGE_SHIFT, page_align_up


class NoIommuDmaApi(DmaApi):
    """IOMMU disabled — DMAs reach physical memory unchecked."""

    name = "no-iommu"
    properties = SchemeProperties(
        label="no-iommu",
        iommu_protection=False,
        sub_page=False,
        no_window=False,
        single_core_perf=True,
        multi_core_perf=True,
    )

    def __init__(self, machine: Machine, allocators: KernelAllocators):
        super().__init__()
        self.machine = machine
        self.allocators = allocators
        self._port = PassthroughDmaPort(machine)
        self._coherent: dict[int, int] = {}  # pa -> node

    def _map(self, core: Core, buf: KBuffer,
             direction: DmaDirection) -> tuple[DmaHandle, object]:
        # A handful of cycles for the (no-op) dma_map_single call itself.
        core.charge(20)
        return DmaHandle(iova=buf.pa, size=buf.size, direction=direction), None

    def _unmap(self, core: Core, buf: KBuffer, handle: DmaHandle,
               cookie: object) -> None:
        core.charge(20)

    def dma_alloc_coherent(self, core: Core, size: int,
                           node: int = 0) -> CoherentBuffer:
        pages = page_align_up(size) >> PAGE_SHIFT
        order = max(0, (pages - 1).bit_length())
        pa = self.allocators.buddies[node].alloc_pages(order, core)
        self._coherent[pa] = node
        kbuf = KBuffer(pa=pa, size=size, node=node)
        self.stats.coherent_allocs += 1
        return CoherentBuffer(kbuf=kbuf, iova=pa, size=size)

    def dma_free_coherent(self, core: Core, buf: CoherentBuffer) -> None:
        node = self._coherent.pop(buf.kbuf.pa)
        self.allocators.buddies[node].free_pages(buf.kbuf.pa, core)

    def port(self) -> PassthroughDmaPort:
        return self._port
