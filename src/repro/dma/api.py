"""The DMA API — the interface drivers use to authorize DMAs (§2.2).

Mirrors the Linux streaming DMA API:

* ``dma_map`` / ``dma_unmap`` for single buffers,
* ``dma_map_sg`` / ``dma_unmap_sg`` for scatter/gather lists,
* ``dma_alloc_coherent`` / ``dma_free_coherent`` for shared
  driver↔device structures (descriptor rings, mailboxes).

Each protection scheme implements this interface.  DMA shadowing's design
goal of *transparency* (§5.1) is expressed here: the shadow implementation
is just another subclass — drivers are oblivious to which scheme runs
beneath them.

The base class also enforces the API contract (no double unmap, unmap
must quote the map's size/direction), because the paper's threat model
assumes drivers use the API correctly and we want tests to prove ours do.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.errors import DmaApiError, ReproError
from repro.hw.cpu import Core
from repro.iommu.iommu import DmaPort
from repro.iommu.page_table import Perm
from repro.kalloc.slab import KBuffer
from repro.obs.context import NULL_OBS
from repro.obs.requests import MARK_MAPPED, MARK_UNMAPPED
from repro.obs.spans import SPAN_DMA_MAP, SPAN_DMA_UNMAP
from repro.obs.trace import EV_DMA_MAP, EV_DMA_UNMAP


class DmaDirection(enum.Enum):
    """Which way the data flows — determines device access rights."""

    TO_DEVICE = "to_device"       # device reads the buffer (e.g. TX)
    FROM_DEVICE = "from_device"   # device writes the buffer (e.g. RX)
    BIDIRECTIONAL = "bidirectional"

    @property
    def perm(self) -> Perm:
        if self is DmaDirection.TO_DEVICE:
            return Perm.READ
        if self is DmaDirection.FROM_DEVICE:
            return Perm.WRITE
        return Perm.RW

    @property
    def device_reads(self) -> bool:
        return self in (DmaDirection.TO_DEVICE, DmaDirection.BIDIRECTIONAL)

    @property
    def device_writes(self) -> bool:
        return self in (DmaDirection.FROM_DEVICE, DmaDirection.BIDIRECTIONAL)


@dataclass(frozen=True)
class DmaHandle:
    """What ``dma_map`` returns: the bus address the driver programs into
    the device, plus the size/direction needed at unmap time."""

    iova: int
    size: int
    direction: DmaDirection


@dataclass(frozen=True)
class CoherentBuffer:
    """A ``dma_alloc_coherent`` allocation: CPU and device views."""

    kbuf: KBuffer
    iova: int
    size: int


@dataclass(frozen=True)
class SchemeProperties:
    """The Table 1 columns for one protection scheme.

    ``sub_page`` and ``no_window`` are *claims* — the security audit in
    :mod:`repro.attacks` verifies them empirically.
    """

    label: str
    iommu_protection: bool
    sub_page: bool
    no_window: bool
    single_core_perf: bool
    multi_core_perf: bool


@dataclass
class _LiveMapping:
    buf: KBuffer
    handle: DmaHandle
    cookie: object = None


@dataclass
class DmaApiStats:
    """Operation counters every implementation maintains."""

    maps: int = 0
    unmaps: int = 0
    sg_maps: int = 0
    coherent_allocs: int = 0
    bytes_mapped: int = 0

    def note_map(self, size: int) -> None:
        self.maps += 1
        self.bytes_mapped += size


class DmaApi(abc.ABC):
    """Base class for all protection schemes."""

    #: Scheme identifier used by the registry and in result tables.
    name: str = "abstract"
    properties: SchemeProperties
    #: Protection domain the scheme maps into, when it has one.
    #: IOMMU-backed subclasses set this; ``None`` (no-iommu, swiotlb)
    #: means the exposure accountant has no domain to attribute to.
    domain_id: int | None = None

    def __init__(self) -> None:
        self._live: Dict[int, _LiveMapping] = {}
        self.stats = DmaApiStats()
        #: Observability context; the registry rebinds this to the
        #: machine's after construction (NULL_OBS → zero overhead).
        self.obs = NULL_OBS

    # ------------------------------------------------------------------
    # Public API (contract enforcement + dispatch).
    # ------------------------------------------------------------------
    def dma_map(self, core: Core, buf: KBuffer,
                direction: DmaDirection) -> DmaHandle:
        """Authorize a DMA to/from ``buf``; returns the bus address handle."""
        if buf.size <= 0:
            raise DmaApiError("dma_map of empty buffer")
        if self.obs.enabled:
            self.obs.spans.begin(SPAN_DMA_MAP, core)
        try:
            handle, cookie = self._map(core, buf, direction)
        except ReproError:
            # Keep the span stack balanced when a map fails (schemes
            # unwind their own IOVA/page/pool state before re-raising).
            if self.obs.enabled:
                self.obs.spans.end(core)
            raise
        if self.obs.enabled:
            self.obs.spans.end(core)
        if handle.iova in self._live:
            raise DmaApiError(
                f"scheme bug: IOVA {handle.iova:#x} handed out twice"
            )
        self._live[handle.iova] = _LiveMapping(buf=buf, handle=handle,
                                               cookie=cookie)
        self.stats.note_map(buf.size)
        if self.obs.enabled:
            self.obs.tracer.emit(EV_DMA_MAP, core.now, core.cid,
                                 scheme=self.name, iova=handle.iova,
                                 size=buf.size,
                                 direction=direction.value)
            self.obs.metrics.counter(f"dma.maps:{self.name}").inc()
            self.obs.exposure.note_dma_map(core.now, self.name,
                                           self.domain_id, handle.iova,
                                           buf.size)
            self.obs.requests.mark(core, MARK_MAPPED)
        return handle

    def dma_unmap(self, core: Core, handle: DmaHandle) -> None:
        """Revoke the authorization; the driver may use the buffer again."""
        live = self._live.pop(handle.iova, None)
        if live is None:
            raise DmaApiError(f"dma_unmap of unknown IOVA {handle.iova:#x}")
        if live.handle != handle:
            self._live[handle.iova] = live
            raise DmaApiError(
                f"dma_unmap arguments disagree with dma_map for "
                f"IOVA {handle.iova:#x}"
            )
        if self.obs.enabled:
            self.obs.spans.begin(SPAN_DMA_UNMAP, core)
        self._unmap(core, live.buf, handle, live.cookie)
        if self.obs.enabled:
            self.obs.spans.end(core)
        self.stats.unmaps += 1
        if self.obs.enabled:
            self.obs.tracer.emit(EV_DMA_UNMAP, core.now, core.cid,
                                 scheme=self.name, iova=handle.iova,
                                 size=handle.size)
            self.obs.metrics.counter(f"dma.unmaps:{self.name}").inc()
            self.obs.exposure.note_dma_unmap(core.now, self.name,
                                             self.domain_id, handle.iova,
                                             handle.size)
            self.obs.requests.mark(core, MARK_UNMAPPED)

    def dma_map_sg(self, core: Core, bufs: Sequence[KBuffer],
                   direction: DmaDirection) -> List[DmaHandle]:
        """Map a scatter/gather list (each element mapped analogously §2.2)."""
        if not bufs:
            raise DmaApiError("dma_map_sg of empty list")
        handles: List[DmaHandle] = []
        try:
            for buf in bufs:
                handles.append(self.dma_map(core, buf, direction))
        except ReproError:
            # All-or-nothing: a half-mapped list would leak its mapped
            # elements (the caller only ever sees the exception).
            for handle in reversed(handles):
                self.dma_unmap(core, handle)
            raise
        self.stats.sg_maps += 1
        return handles

    def dma_unmap_sg(self, core: Core, handles: Sequence[DmaHandle]) -> None:
        for handle in handles:
            self.dma_unmap(core, handle)

    @abc.abstractmethod
    def dma_alloc_coherent(self, core: Core, size: int,
                           node: int = 0) -> CoherentBuffer:
        """Allocate driver↔device shared memory (page quantities, §2.2)."""

    @abc.abstractmethod
    def dma_free_coherent(self, core: Core, buf: CoherentBuffer) -> None:
        """Free and unmap a coherent allocation (strict semantics, §5.2)."""

    @abc.abstractmethod
    def port(self) -> DmaPort:
        """The bus connection the device should issue its DMAs through."""

    # ------------------------------------------------------------------
    # Scheme hooks.
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _map(self, core: Core, buf: KBuffer,
             direction: DmaDirection) -> tuple[DmaHandle, object]:
        """Scheme-specific map; returns (handle, opaque unmap cookie)."""

    @abc.abstractmethod
    def _unmap(self, core: Core, buf: KBuffer, handle: DmaHandle,
               cookie: object) -> None:
        """Scheme-specific unmap."""

    # ------------------------------------------------------------------
    # Deferred-work hooks (no-ops for strict schemes).
    # ------------------------------------------------------------------
    def flush_deferred(self, core: Core) -> None:
        """Force any pending deferred invalidations to complete."""

    def quiesce(self, core: Core) -> None:
        """Bring the scheme to a safe state (used between benchmark runs)."""
        self.flush_deferred(core)

    @property
    def live_mappings(self) -> int:
        return len(self._live)
