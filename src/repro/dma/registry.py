"""Factory for protection schemes — one name per row of Table 1.

==================  ========================================================
scheme name         composition
==================  ========================================================
``no-iommu``        IOMMU disabled (no protection)
``linux-strict``    stock Linux: rbtree IOVA allocator + strict unmap
``linux-deferred``  stock Linux default: rbtree + global-list deferral
``eiovar-strict``   FAST'15 [38]: cached IOVA ranges + strict unmap
``eiovar-deferred`` FAST'15 allocator + global-list deferral
``magazine-strict`` ATC'15 [42]: per-core IOVA magazines + strict unmap
``magazine-deferred`` ATC'15: per-core magazines + per-core deferral
``identity-strict`` the paper's **identity+**: identity IOVAs + strict
``identity-deferred`` the paper's **identity−**: identity IOVAs + per-core
                    deferral
``copy``            the paper's contribution: DMA shadowing (§5)
``identity-strict-percore`` identity+ over per-core invalidation queues
                    with ranged descriptors (post-2016 remedy)
``identity-deferred-bounded`` identity− with per-core queues, ranged
                    flushes and a 100 µs window budget
``identity-strict-prefetch`` identity-strict-percore + IOTLB prefetch
                    hints at map time (MMU-aware DMA engine style)
==================  ========================================================

Everything except ``no-iommu`` translates through the same IOMMU model;
the schemes differ only in IOVA allocation and invalidation policy —
exactly the design space of the paper's Table 1.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.dma.api import DmaApi, SchemeProperties
from repro.dma.direct import NoIommuDmaApi
from repro.dma.zerocopy import DeferredZeroCopyDmaApi, StrictZeroCopyDmaApi
from repro.errors import ConfigurationError
from repro.hw.locks import SpinLock
from repro.hw.machine import Machine
from repro.iommu.iommu import Iommu
from repro.iova.allocators import (
    EiovaRAllocator,
    IdentityIovaAllocator,
    LinuxIovaAllocator,
    MagazineIovaAllocator,
)
from repro.kalloc.slab import KernelAllocators

#: Canonical short labels used in the paper's figures.
PAPER_ALIASES = {
    "identity+": "identity-strict",
    "identity-": "identity-deferred",
    # Prose shorthands (§2.2): "strict" and "deferred" unambiguously
    # mean the identity-mapped IOMMU modes the paper evaluates.
    "strict": "identity-strict",
    "deferred": "identity-deferred",
    # Scalable-invalidation shorthands (see iommu/invalidation.py).
    "strict-percore": "identity-strict-percore",
    "deferred-bounded": "identity-deferred-bounded",
    "strict-prefetch": "identity-strict-prefetch",
}

_PROPERTIES: Dict[str, SchemeProperties] = {
    "no-iommu": NoIommuDmaApi.properties,
    "linux-strict": SchemeProperties(
        "Linux strict", iommu_protection=True, sub_page=False,
        no_window=True, single_core_perf=False, multi_core_perf=False),
    "linux-deferred": SchemeProperties(
        "Linux deferred", iommu_protection=True, sub_page=False,
        no_window=False, single_core_perf=True, multi_core_perf=False),
    "eiovar-strict": SchemeProperties(
        "FAST'15 strict", iommu_protection=True, sub_page=False,
        no_window=True, single_core_perf=True, multi_core_perf=False),
    "eiovar-deferred": SchemeProperties(
        "FAST'15 deferred", iommu_protection=True, sub_page=False,
        no_window=False, single_core_perf=True, multi_core_perf=False),
    "magazine-strict": SchemeProperties(
        "ATC'15 strict", iommu_protection=True, sub_page=False,
        no_window=True, single_core_perf=True, multi_core_perf=False),
    "magazine-deferred": SchemeProperties(
        "ATC'15 deferred", iommu_protection=True, sub_page=False,
        no_window=False, single_core_perf=True, multi_core_perf=True),
    "identity-strict": SchemeProperties(
        "identity+ (strict page protection)", iommu_protection=True,
        sub_page=False, no_window=True, single_core_perf=True,
        multi_core_perf=False),
    "identity-deferred": SchemeProperties(
        "identity- (deferred page protection)", iommu_protection=True,
        sub_page=False, no_window=False, single_core_perf=True,
        multi_core_perf=True),
    "copy": SchemeProperties(
        "copy (shadow buffers)", iommu_protection=True, sub_page=True,
        no_window=True, single_core_perf=True, multi_core_perf=True),
    # Extension rows (paper §7 related work, built here as executable
    # comparisons — see DESIGN.md):
    "swiotlb": SchemeProperties(
        "SWIOTLB (bounce buffers, no IOMMU)", iommu_protection=False,
        sub_page=False, no_window=False, single_core_perf=True,
        multi_core_perf=False),
    "self-invalidating": SchemeProperties(
        "self-invalidating IOMMU [Basu et al.]", iommu_protection=True,
        sub_page=False, no_window=False, single_core_perf=True,
        multi_core_perf=True),
    # Scalable-invalidation rows (post-2016 remedies for the paper's
    # qi-lock bottleneck; see iommu/invalidation.py module docstring):
    "identity-strict-percore": SchemeProperties(
        "identity+ percore (sharded ranged invalidation)",
        iommu_protection=True, sub_page=False, no_window=True,
        single_core_perf=True, multi_core_perf=True),
    "identity-deferred-bounded": SchemeProperties(
        "identity- bounded (ranged flush, 100us window)",
        iommu_protection=True, sub_page=False, no_window=False,
        single_core_perf=True, multi_core_perf=True),
    "identity-strict-prefetch": SchemeProperties(
        "identity+ prefetch (sharded + IOTLB prefetch)",
        iommu_protection=True, sub_page=False, no_window=True,
        single_core_perf=True, multi_core_perf=True),
}

#: Schemes built on the per-core invalidation subsystem.
SCALABLE_SCHEMES = ("identity-strict-percore", "identity-deferred-bounded",
                    "identity-strict-prefetch")

ALL_SCHEMES = tuple(_PROPERTIES)

#: The four systems the paper's throughput figures compare.
FIGURE_SCHEMES = ("no-iommu", "copy", "identity-deferred", "identity-strict")


def scheme_properties(name: str) -> SchemeProperties:
    name = PAPER_ALIASES.get(name, name)
    try:
        return _PROPERTIES[name]
    except KeyError:
        raise ConfigurationError(f"unknown scheme {name!r}") from None


def create_dma_api(name: str, machine: Machine, iommu: Iommu | None,
                   device_id: int, allocators: KernelAllocators,
                   **scheme_kwargs) -> DmaApi:
    """Build the protection scheme ``name`` for ``device_id``.

    ``iommu`` may be ``None`` only for ``no-iommu``.  ``scheme_kwargs``
    pass through to scheme-specific constructors (e.g. ``sticky=False``
    or ``size_classes=...`` for ``copy``).
    """
    name = PAPER_ALIASES.get(name, name)
    api = _build_dma_api(name, machine, iommu, device_id, allocators,
                         **scheme_kwargs)
    # Single rebind point: every scheme observes through the machine's
    # context; directly-constructed schemes (unit tests) stay NULL_OBS.
    api.obs = machine.obs
    # Same pattern for fault injection: the machine's injector reaches
    # the IOVA allocators the scheme composed.
    for attr in ("iova_allocator", "fallback_iova"):
        allocator = getattr(api, attr, None)
        if allocator is not None and hasattr(allocator, "faults"):
            allocator.faults = machine.faults
    return api


def _build_dma_api(name: str, machine: Machine, iommu: Iommu | None,
                   device_id: int, allocators: KernelAllocators,
                   **scheme_kwargs) -> DmaApi:
    if name == "no-iommu":
        return NoIommuDmaApi(machine, allocators)
    if name == "swiotlb":
        from repro.dma.swiotlb import SwiotlbDmaApi

        return SwiotlbDmaApi(machine, allocators, **scheme_kwargs)
    if iommu is None:
        raise ConfigurationError(f"scheme {name!r} requires an IOMMU")
    if name == "self-invalidating":
        from repro.dma.selfinval import SelfInvalidatingDmaApi

        return SelfInvalidatingDmaApi(machine, iommu, device_id,
                                      allocators, **scheme_kwargs)
    if name == "copy":
        from repro.core.shadow_dma import ShadowDmaApi  # avoid import cycle

        fallback = MagazineIovaAllocator(
            machine.cost, machine.num_cores,
            SpinLock("iova-depot", machine.cost, obs=machine.obs))
        return ShadowDmaApi(machine, iommu, device_id, allocators,
                            fallback_iova=fallback, **scheme_kwargs)

    if name in SCALABLE_SCHEMES:
        # The scalable variants swap the IOMMU's single invalidation
        # queue for per-core shards (idempotent — schemes sharing one
        # IOMMU agree on the subsystem) and post ranged descriptors.
        iommu.enable_percore_invalidation()
        iova_allocator = IdentityIovaAllocator(machine.cost)
        props = _PROPERTIES[name]
        if name == "identity-deferred-bounded":
            kwargs = dict(scheme_kwargs)
            kwargs.setdefault("window_budget_cycles",
                              machine.cost.deferred_window_budget_cycles)
            return DeferredZeroCopyDmaApi(
                machine, iommu, device_id, allocators, iova_allocator,
                name=name, per_core_batching=True, properties=props,
                ranged_flush=True, **kwargs)
        return StrictZeroCopyDmaApi(
            machine, iommu, device_id, allocators, iova_allocator,
            name=name, properties=props, ranged=True,
            prefetch=(name == "identity-strict-prefetch"),
            **scheme_kwargs)

    iova_kind, _, policy = name.rpartition("-")
    makers: Dict[str, Callable] = {
        "linux": lambda: LinuxIovaAllocator(
            machine.cost, SpinLock("iova-rbtree", machine.cost,
                                   obs=machine.obs)),
        "eiovar": lambda: EiovaRAllocator(
            machine.cost, SpinLock("iova-rbtree", machine.cost,
                                   obs=machine.obs)),
        "magazine": lambda: MagazineIovaAllocator(
            machine.cost, machine.num_cores,
            SpinLock("iova-depot", machine.cost, obs=machine.obs)),
        "identity": lambda: IdentityIovaAllocator(machine.cost),
    }
    if iova_kind not in makers or policy not in ("strict", "deferred"):
        raise ConfigurationError(f"unknown scheme {name!r}")
    iova_allocator = makers[iova_kind]()
    props = _PROPERTIES[name]
    if policy == "strict":
        return StrictZeroCopyDmaApi(machine, iommu, device_id, allocators,
                                    iova_allocator, name=name,
                                    properties=props, **scheme_kwargs)
    # Deferred: stock Linux (and EiovaR) batch on a single global list;
    # the scalable schemes batch per core (§2.2.1).
    per_core = iova_kind in ("magazine", "identity")
    return DeferredZeroCopyDmaApi(machine, iommu, device_id, allocators,
                                  iova_allocator, name=name,
                                  per_core_batching=per_core,
                                  properties=props, **scheme_kwargs)
