"""DMA shadowing — the copy-based DMA API (paper §5.2, §5.4, §5.5).

This is the paper's contribution, packaged as just another
:class:`~repro.dma.api.DmaApi` implementation (design goal *transparency*,
§5.1): drivers call the same ``dma_map``/``dma_unmap`` and get, invisibly,

* ``dma_map``: acquire a permanently-mapped shadow buffer from the pool,
  copy the OS buffer into it if the device will read it, return the
  shadow's IOVA;
* ``dma_unmap``: ``find_shadow`` the buffer in O(1) from the IOVA, copy
  the device-written bytes back to the OS buffer if the device wrote,
  release the shadow.

No page-table update, no IOTLB invalidation, no IOVA allocation on the
hot path — the costs that cripple the zero-copy schemes simply do not
occur.  The price is the copy, which §6 shows is the cheaper side of the
trade for DMA-intensive workloads.

Buffers larger than the biggest size class take the §5.5 *hybrid* path:
copy only the sub-page head/tail through small shadows and map the
page-aligned middle zero-copy (with a strict unmap), preserving
byte-granularity protection at huge-buffer sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.hints import CopyHint, clamp_hint
from repro.core.shadow_pool import ShadowBufferMeta, ShadowBufferPool
from repro.dma.api import (
    CoherentBuffer,
    DmaApi,
    DmaDirection,
    DmaHandle,
    SchemeProperties,
)
from repro.errors import DmaApiError, PoolExhaustedError, ReproError
from repro.hw.cpu import CAT_COPY_MGMT, CAT_MEMCPY, CAT_OTHER, Core
from repro.hw.machine import Machine
from repro.iommu.iommu import Domain, Iommu, TranslatingDmaPort
from repro.iommu.page_table import Perm
from repro.iova.base import IovaAllocator
from repro.kalloc.slab import KBuffer, KernelAllocators
from repro.obs.requests import MARK_COPIED
from repro.obs.spans import SPAN_COPY
from repro.obs.trace import EV_DMA_BOUNCE, EV_DMA_COPY
from repro.sim.units import PAGE_SHIFT, PAGE_SIZE, page_align_up


class _PhysView:
    """Read-only window over physical memory, handed to copy hints."""

    __slots__ = ("_memory", "_pa", "_size")

    def __init__(self, memory, pa: int, size: int):
        self._memory = memory
        self._pa = pa
        self._size = size

    def read(self, offset: int, size: int) -> bytes:
        if offset < 0 or offset + size > self._size:
            raise ValueError("hint read outside buffer")
        return self._memory.read(self._pa + offset, size)


@dataclass
class _HybridCookie:
    """Unmap context for a §5.5 hybrid (huge-buffer) mapping."""

    iova_base: int          # page-aligned base of the allocated IOVA range
    total_pages: int
    head_meta: Optional[ShadowBufferMeta]
    tail_meta: Optional[ShadowBufferMeta]
    head_len: int
    tail_len: int


@dataclass
class _BounceCookie:
    """Unmap context for a swiotlb-style bounce mapping — the last rung
    of the degradation ladder (shadow pool → §5.3 fallback → bounce)."""

    pa: int                 # bounce pages (buddy allocation)
    npages: int             # allocated page count (power of two)
    iova: int               # page-aligned IOVA of the bounce range
    node: int


class ShadowDmaApi(DmaApi):
    """The ``copy`` scheme: strict byte-granularity protection via DMA
    shadowing."""

    name = "copy"
    properties = SchemeProperties(
        label="copy (shadow buffers)",
        iommu_protection=True,
        sub_page=True,
        no_window=True,
        single_core_perf=True,
        multi_core_perf=True,
    )

    def __init__(self, machine: Machine, iommu: Iommu, device_id: int,
                 allocators: KernelAllocators,
                 fallback_iova: IovaAllocator,
                 size_classes: tuple[int, ...] = (4096, 65536),
                 sticky: bool = True,
                 hybrid_huge_buffers: bool = True,
                 max_buffers_per_class: int = 16 * 1024,
                 max_pool_bytes: int | None = None,
                 bounce_fallback: bool = False):
        super().__init__()
        self.machine = machine
        self.cost = machine.cost
        self.iommu = iommu
        self.domain: Domain = iommu.attach_device(device_id)
        self.domain_id = self.domain.domain_id
        self.allocators = allocators
        self.fallback_iova = fallback_iova
        self.hybrid_huge_buffers = hybrid_huge_buffers
        self.pool = ShadowBufferPool(
            machine, iommu, self.domain, allocators, fallback_iova,
            size_classes=size_classes, sticky=sticky,
            max_buffers_per_class=max_buffers_per_class,
            max_pool_bytes=max_pool_bytes,
        )
        self._port = TranslatingDmaPort(iommu, self.domain)
        self._tx_hint: CopyHint | None = None
        self._rx_hint: CopyHint | None = None
        self._coherent: dict[int, CoherentBuffer] = {}
        self.hybrid_maps = 0
        #: Opt-in degradation: when the pool (and its §5.3 fallback)
        #: cannot produce a shadow, fall back to a swiotlb-style bounce
        #: mapping instead of failing the map.  Off by default so a
        #: configured pool cap still fails loudly (the chaos harness
        #: turns it on).
        self.bounce_fallback = bounce_fallback
        self.bounce_maps = 0

    # ------------------------------------------------------------------
    # Copy hints (§5.4).
    # ------------------------------------------------------------------
    def register_copy_hint(self, direction: DmaDirection,
                           hint: CopyHint | None) -> None:
        """Register (or clear, with ``None``) a driver copying hint.

        The TX hint inspects the OS buffer at map time; the RX hint
        inspects the *device-written shadow* at unmap time, so its input
        is untrusted (§5.4) — results are clamped to the mapped size.
        """
        if direction is DmaDirection.TO_DEVICE:
            self._tx_hint = hint
        elif direction is DmaDirection.FROM_DEVICE:
            self._rx_hint = hint
        else:
            raise DmaApiError("hints are per direction; register both")

    # ------------------------------------------------------------------
    # Map / unmap (§5.2).
    # ------------------------------------------------------------------
    def _map(self, core: Core, buf: KBuffer,
             direction: DmaDirection) -> tuple[DmaHandle, object]:
        if self.pool.codec.class_for_size(buf.size) is None:
            if not self.hybrid_huge_buffers:
                raise DmaApiError(
                    f"{buf.size} B exceeds the largest shadow class and the "
                    f"hybrid path is disabled"
                )
            return self._map_hybrid(core, buf, direction)
        try:
            meta = self.pool.acquire_shadow(core, buf, buf.size,
                                            direction.perm)
        except PoolExhaustedError:
            if not self.bounce_fallback:
                raise
            return self._map_bounce(core, buf, direction)
        if direction.device_reads:
            copy_len = buf.size
            if self._tx_hint is not None:
                core.charge(self.cost.copy_hint_cycles, CAT_COPY_MGMT)
                view = _PhysView(self.machine.memory, buf.pa, buf.size)
                copy_len = clamp_hint(self._tx_hint(view, buf.size), buf.size)
            self._charged_copy(core, dst_pa=meta.pa, src_pa=buf.pa,
                               nbytes=copy_len,
                               remote=meta.domain_node != buf.node)
        handle = DmaHandle(iova=meta.iova, size=buf.size, direction=direction)
        return handle, meta

    def _map_bounce(self, core: Core, buf: KBuffer,
                    direction: DmaDirection) -> tuple[DmaHandle, _BounceCookie]:
        """Swiotlb-style bounce mapping: fresh pages + a transient
        strict-unmapped IOMMU mapping.  Slower than a shadow (page
        granular, allocates on the hot path) but keeps traffic moving
        when the pool is saturated."""
        npages = max(1, page_align_up(buf.size) >> PAGE_SHIFT)
        order = max(0, (npages - 1).bit_length())
        alloc_pages = 1 << order
        node = buf.node
        pa = self.allocators.buddies[node].alloc_pages(order, core)
        try:
            iova = self.fallback_iova.alloc(alloc_pages, core, pa)
        except ReproError:
            self.allocators.buddies[node].free_pages(pa, core)
            raise
        try:
            self.iommu.map_range(self.domain, iova, pa,
                                 alloc_pages << PAGE_SHIFT, direction.perm,
                                 core, kind="dedicated")
        except ReproError:
            self.fallback_iova.free(iova, alloc_pages, core)
            self.allocators.buddies[node].free_pages(pa, core)
            raise
        if direction.device_reads:
            self._charged_copy(core, dst_pa=pa, src_pa=buf.pa,
                               nbytes=buf.size, remote=False)
        self.bounce_maps += 1
        if self.obs.enabled:
            self.obs.tracer.emit(EV_DMA_BOUNCE, core.now, core.cid,
                                 iova=iova, size=buf.size)
            self.obs.metrics.counter("dma.bounce_maps").inc()
        cookie = _BounceCookie(pa=pa, npages=alloc_pages, iova=iova,
                               node=node)
        return (DmaHandle(iova=iova, size=buf.size, direction=direction),
                cookie)

    def _unmap_bounce(self, core: Core, buf: KBuffer, handle: DmaHandle,
                      cookie: _BounceCookie) -> None:
        if handle.direction.device_writes:
            self._charged_copy(core, dst_pa=buf.pa, src_pa=cookie.pa,
                               nbytes=handle.size, remote=False)
        # Strict teardown: the bounce pages are reused by the buddy, so
        # no stale translation may survive.
        self.iommu.unmap_range(self.domain, cookie.iova,
                               cookie.npages << PAGE_SHIFT, core)
        self.iommu.invalidation_queue.invalidate_sync(
            core, self.domain.domain_id, cookie.iova >> PAGE_SHIFT,
            cookie.npages)
        self.fallback_iova.free(cookie.iova, cookie.npages, core)
        self.allocators.buddies[cookie.node].free_pages(cookie.pa, core)

    def _unmap(self, core: Core, buf: KBuffer, handle: DmaHandle,
               cookie: object) -> None:
        if isinstance(cookie, _HybridCookie):
            self._unmap_hybrid(core, buf, handle, cookie)
            return
        if isinstance(cookie, _BounceCookie):
            self._unmap_bounce(core, buf, handle, cookie)
            return
        # The real implementation has only the IOVA at unmap time; use the
        # O(1) lookup and cross-check against the map-time cookie.
        meta = self.pool.find_shadow(core, handle.iova)
        if meta is not cookie:
            raise DmaApiError(
                f"find_shadow({handle.iova:#x}) resolved to a different "
                f"buffer than dma_map produced"
            )
        if handle.direction.device_writes:
            copy_len = handle.size
            if self._rx_hint is not None:
                core.charge(self.cost.copy_hint_cycles, CAT_COPY_MGMT)
                view = _PhysView(self.machine.memory, meta.pa, handle.size)
                copy_len = clamp_hint(self._rx_hint(view, handle.size),
                                      handle.size)
            self._charged_copy(core, dst_pa=buf.pa, src_pa=meta.pa,
                               nbytes=copy_len,
                               remote=meta.domain_node != buf.node)
        self.pool.release_shadow(core, meta)

    def _charged_copy(self, core: Core, dst_pa: int, src_pa: int,
                      nbytes: int, remote: bool) -> None:
        """Move real bytes and charge the calibrated memcpy + pollution."""
        if nbytes <= 0:
            return
        if self.obs.enabled:
            self.obs.spans.begin(SPAN_COPY, core)
        cycles = self.cost.memcpy_cycles(nbytes)
        if remote:
            cycles = round(cycles * self.cost.numa_remote_copy_factor)
        core.charge(cycles, CAT_MEMCPY)
        pollution = self.cost.pollution_cycles(nbytes)
        if pollution:
            core.charge(pollution, CAT_OTHER)
        self.machine.memory.copy(dst_pa, src_pa, nbytes)
        if self.obs.enabled:
            self.obs.tracer.emit(EV_DMA_COPY, core.now, core.cid,
                                 nbytes=nbytes, remote=remote,
                                 cycles=cycles)
            self.obs.metrics.histogram("dma.copy_bytes").observe(nbytes)
            self.obs.requests.mark(core, MARK_COPIED)
            self.obs.spans.end(core)

    # ------------------------------------------------------------------
    # Hybrid huge buffers (§5.5).
    # ------------------------------------------------------------------
    def _map_hybrid(self, core: Core, buf: KBuffer,
                    direction: DmaDirection) -> tuple[DmaHandle, _HybridCookie]:
        """Copy only the sub-page head/tail; map the aligned middle zero-copy."""
        rights = direction.perm
        offset = buf.pa & (PAGE_SIZE - 1)
        head_len = (PAGE_SIZE - offset) % PAGE_SIZE
        head_len = min(head_len, buf.size)
        remaining = buf.size - head_len
        middle_pages = remaining >> PAGE_SHIFT
        tail_len = remaining & (PAGE_SIZE - 1)
        total_pages = (1 if head_len else 0) + middle_pages + (1 if tail_len else 0)
        iova_base = self.fallback_iova.alloc(total_pages, core, buf.pa - offset)

        cursor = iova_base
        head_meta = tail_meta = None
        mapped_ranges: list[tuple[int, int]] = []   # (iova, nbytes)
        try:
            if head_len:
                head_meta = self.pool.acquire_shadow(core, buf, PAGE_SIZE,
                                                     rights)
                self.iommu.map_range(self.domain, cursor, head_meta.pa,
                                     PAGE_SIZE, rights, core,
                                     kind="dedicated")
                mapped_ranges.append((cursor, PAGE_SIZE))
                if direction.device_reads:
                    self._charged_copy(
                        core, dst_pa=head_meta.pa + offset,
                        src_pa=buf.pa, nbytes=head_len,
                        remote=head_meta.domain_node != buf.node)
                cursor += PAGE_SIZE
            if middle_pages:
                middle_pa = buf.pa + head_len
                self.iommu.map_range(self.domain, cursor, middle_pa,
                                     middle_pages << PAGE_SHIFT, rights, core)
                mapped_ranges.append((cursor, middle_pages << PAGE_SHIFT))
                cursor += middle_pages << PAGE_SHIFT
            if tail_len:
                tail_meta = self.pool.acquire_shadow(core, buf, PAGE_SIZE,
                                                     rights)
                self.iommu.map_range(self.domain, cursor, tail_meta.pa,
                                     PAGE_SIZE, rights, core,
                                     kind="dedicated")
                mapped_ranges.append((cursor, PAGE_SIZE))
                if direction.device_reads:
                    tail_src = buf.pa + head_len + (middle_pages << PAGE_SHIFT)
                    self._charged_copy(
                        core, dst_pa=tail_meta.pa,
                        src_pa=tail_src, nbytes=tail_len,
                        remote=tail_meta.domain_node != buf.node)
        except ReproError:
            # Partially built hybrid mapping: tear down what exists (with
            # strict invalidation), return the shadows and the IOVA range,
            # then degrade to a bounce if the ladder allows it.
            for iova_r, nbytes in mapped_ranges:
                self.iommu.unmap_range(self.domain, iova_r, nbytes, core)
                self.iommu.invalidation_queue.invalidate_sync(
                    core, self.domain.domain_id, iova_r >> PAGE_SHIFT,
                    max(1, nbytes >> PAGE_SHIFT))
            for meta in (head_meta, tail_meta):
                if meta is not None:
                    self.pool.release_shadow(core, meta)
            self.fallback_iova.free(iova_base, total_pages, core)
            if self.bounce_fallback:
                return self._map_bounce(core, buf, direction)
            raise

        self.hybrid_maps += 1
        handle_iova = iova_base + offset if head_len else iova_base
        cookie = _HybridCookie(iova_base=iova_base, total_pages=total_pages,
                               head_meta=head_meta, tail_meta=tail_meta,
                               head_len=head_len, tail_len=tail_len)
        return (DmaHandle(iova=handle_iova, size=buf.size,
                          direction=direction), cookie)

    def _unmap_hybrid(self, core: Core, buf: KBuffer, handle: DmaHandle,
                      cookie: _HybridCookie) -> None:
        offset = buf.pa & (PAGE_SIZE - 1)
        middle_pages = (cookie.total_pages
                        - (1 if cookie.head_len else 0)
                        - (1 if cookie.tail_len else 0))
        if handle.direction.device_writes:
            if cookie.head_meta is not None:
                self._charged_copy(
                    core, dst_pa=buf.pa,
                    src_pa=cookie.head_meta.pa + offset,
                    nbytes=cookie.head_len,
                    remote=cookie.head_meta.domain_node != buf.node)
            if cookie.tail_meta is not None:
                tail_dst = buf.pa + cookie.head_len + (middle_pages << PAGE_SHIFT)
                self._charged_copy(
                    core, dst_pa=tail_dst, src_pa=cookie.tail_meta.pa,
                    nbytes=cookie.tail_len,
                    remote=cookie.tail_meta.domain_node != buf.node)
        # Destroy the transient mapping *strictly* — invalidate before the
        # buffer can be reused (§5.5).
        self.iommu.unmap_range(self.domain, cookie.iova_base,
                               cookie.total_pages << PAGE_SHIFT, core)
        self.iommu.invalidation_queue.invalidate_sync(
            core, self.domain.domain_id, cookie.iova_base >> PAGE_SHIFT,
            cookie.total_pages)
        if cookie.head_meta is not None:
            self.pool.release_shadow(core, cookie.head_meta)
        if cookie.tail_meta is not None:
            self.pool.release_shadow(core, cookie.tail_meta)
        self.fallback_iova.free(cookie.iova_base, cookie.total_pages, core)

    # ------------------------------------------------------------------
    # Coherent allocations: standard strict implementation (§5.2 — they
    # are infrequent and already page-granular, hence byte-safe).
    # ------------------------------------------------------------------
    def dma_alloc_coherent(self, core: Core, size: int,
                           node: int = 0) -> CoherentBuffer:
        pages = max(1, page_align_up(size) >> PAGE_SHIFT)
        order = max(0, (pages - 1).bit_length())
        pa = self.allocators.buddies[node].alloc_pages(order, core)
        npages = 1 << order
        try:
            iova = self.fallback_iova.alloc(npages, core, pa)
        except ReproError:
            self.allocators.buddies[node].free_pages(pa, core)
            raise
        try:
            self.iommu.map_range(self.domain, iova, pa, npages << PAGE_SHIFT,
                                 Perm.RW, core, kind="dedicated")
        except ReproError:
            self.fallback_iova.free(iova, npages, core)
            self.allocators.buddies[node].free_pages(pa, core)
            raise
        kbuf = KBuffer(pa=pa, size=size, node=node)
        buf = CoherentBuffer(kbuf=kbuf, iova=iova, size=size)
        self._coherent[iova] = buf
        self.stats.coherent_allocs += 1
        return buf

    def dma_free_coherent(self, core: Core, buf: CoherentBuffer) -> None:
        if self._coherent.pop(buf.iova, None) is None:
            raise DmaApiError(f"free of unknown coherent buffer {buf.iova:#x}")
        pages = max(1, page_align_up(buf.size) >> PAGE_SHIFT)
        order = max(0, (pages - 1).bit_length())
        npages = 1 << order
        self.iommu.unmap_range(self.domain, buf.iova, npages << PAGE_SHIFT,
                               core)
        self.iommu.invalidation_queue.invalidate_sync(
            core, self.domain.domain_id, buf.iova >> PAGE_SHIFT, npages)
        self.fallback_iova.free(buf.iova, npages, core)
        self.allocators.buddies[buf.kbuf.node].free_pages(buf.kbuf.pa, core)

    def port(self) -> TranslatingDmaPort:
        return self._port
