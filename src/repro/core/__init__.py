"""The paper's contribution: DMA shadowing (shadow pool + copy-based DMA API)."""

from repro.core.hints import BufferView, CopyHint, clamp_hint, full_copy_hint, ip_length_hint
from repro.core.iova_encoding import DecodedShadowIova, ShadowIovaCodec
from repro.core.shadow_dma import ShadowDmaApi
from repro.core.shadow_pool import PoolStats, ShadowBufferMeta, ShadowBufferPool

__all__ = [
    "ShadowDmaApi",
    "ShadowBufferPool",
    "ShadowBufferMeta",
    "PoolStats",
    "ShadowIovaCodec",
    "DecodedShadowIova",
    "CopyHint",
    "BufferView",
    "ip_length_hint",
    "full_copy_hint",
    "clamp_hint",
]
