"""Copying hints (paper §5.4).

DMA buffers often end up only partially full — an RX ring posts MTU-sized
buffers but most packets are smaller.  A driver may register an optional
*copying hint*: a function that, given a view of the buffer, returns how
many bytes actually need copying.  The hint's input is untrusted (it
reads device-written data), so it is the hint author's job to be fast and
safe; the framework clamps the result into ``[0, size]`` regardless.

The prototype hint from the paper — "return the length of the IP packet
in the buffer" — is provided as :func:`ip_length_hint`.
"""

from __future__ import annotations

import struct
from typing import Callable, Protocol

#: A hint receives a byte-reader over the buffer plus the mapped size and
#: returns the number of bytes worth copying.
CopyHint = Callable[["BufferView", int], int]

ETH_HEADER_LEN = 14
_IP_TOTLEN_OFFSET = ETH_HEADER_LEN + 2  # IPv4 total-length field


class BufferView(Protocol):
    """Read-only access to (a prefix of) a DMA buffer's bytes."""

    def read(self, offset: int, size: int) -> bytes:
        ...


def clamp_hint(value: int, size: int) -> int:
    """Sanitize an untrusted hint result into ``[0, size]``."""
    if value < 0:
        return 0
    return min(value, size)


def ip_length_hint(view: BufferView, size: int) -> int:
    """The paper's prototype hint: copy ``eth header + IP total length``.

    Reads the IPv4 total-length field from the (untrusted) frame.  Any
    parse failure falls back to copying the full buffer — correctness
    never depends on the hint being right, only efficiency does.
    """
    if size < _IP_TOTLEN_OFFSET + 2:
        return size
    try:
        raw = view.read(_IP_TOTLEN_OFFSET, 2)
        (ip_len,) = struct.unpack("!H", raw)
    except Exception:
        return size
    return clamp_hint(ETH_HEADER_LEN + ip_len, size)


def full_copy_hint(view: BufferView, size: int) -> int:  # noqa: ARG001
    """Degenerate hint: always copy everything (hints disabled)."""
    return size
