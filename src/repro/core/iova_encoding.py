"""48-bit shadow-buffer IOVA encoding (paper §5.3, Figure 2).

A shadow buffer's IOVA uniquely identifies its metadata structure so that
``find_shadow`` runs in O(1): decode a few bit fields, index an array.
The prototype layout from the paper is reproduced exactly:

====  =======  ==========================================================
bits  width    field
====  =======  ==========================================================
47    1        shadow flag (1 = shadow-encoded IOVA; 0 = fallback space)
40–46 7        owner core id (identifies the free list's core)
38–39 2        access rights (01 read, 10 write, 11 both)
37    1        size-class index (0 = 4 KB, 1 = 64 KB in the prototype)
0–36  37       metadata index ‖ offset — the low ``log2(C)`` bits of a
               size-class-C buffer address bytes *within* the buffer, the
               rest index the owning NUMA domain's metadata array
====  =======  ==========================================================

The encoder is parameterized over the size-class table so configurations
with more classes (at the price of fewer index bits — §5.3) work too.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.iommu.page_table import Perm

SHADOW_FLAG_BIT = 47
CORE_SHIFT = 40
CORE_BITS = 7
RIGHTS_SHIFT = 38
RIGHTS_BITS = 2
CLASS_SHIFT = 37
INDEX_FIELD_BITS = 37

_PERM_TO_CODE = {Perm.READ: 0b01, Perm.WRITE: 0b10, Perm.RW: 0b11}
_CODE_TO_PERM = {v: k for k, v in _PERM_TO_CODE.items()}


@dataclass(frozen=True)
class DecodedShadowIova:
    """The fields recovered from a shadow IOVA."""

    core_id: int
    rights: Perm
    class_index: int
    meta_index: int
    offset: int


class ShadowIovaCodec:
    """Encode/decode shadow IOVAs for a given size-class table.

    ``size_classes`` must be powers of two, ascending.  With ``k`` classes
    the class field needs ``ceil(log2(k))`` bits; the prototype's single
    bit supports the default ``(4 KB, 64 KB)`` table.
    """

    def __init__(self, size_classes: tuple[int, ...] = (4096, 65536)):
        if not size_classes:
            raise ConfigurationError("need at least one size class")
        if list(size_classes) != sorted(set(size_classes)):
            raise ConfigurationError("size classes must be ascending, unique")
        for size in size_classes:
            if size & (size - 1):
                raise ConfigurationError(
                    f"size class {size} is not a power of two"
                )
        self.size_classes = tuple(size_classes)
        self.class_bits = max(1, (len(size_classes) - 1).bit_length())
        #: The class field ends at bit 37 and grows *downward* into the
        #: index field when more classes are configured — §5.3: "one can
        #: have more size classes by using less bits for the index".
        self.class_shift = CLASS_SHIFT - (self.class_bits - 1)
        if self.class_shift < 20:
            raise ConfigurationError("too many size classes for the layout")
        #: Per class: number of low bits addressing inside a buffer.
        self.offset_bits = tuple(size.bit_length() - 1
                                 for size in size_classes)
        for bits in self.offset_bits:
            if bits >= self.class_shift:
                raise ConfigurationError(
                    "size class too large for the remaining index field"
                )

    # ------------------------------------------------------------------
    def index_capacity(self, class_index: int) -> int:
        """Max metadata entries addressable for one size class
        (2^(index-field-bits − log2 C), §5.3)."""
        return 1 << (self.class_shift - self.offset_bits[class_index])

    def class_for_size(self, size: int) -> int | None:
        """Smallest size class holding ``size`` bytes (None = too big)."""
        for idx, cls in enumerate(self.size_classes):
            if size <= cls:
                return idx
        return None

    # ------------------------------------------------------------------
    def encode(self, core_id: int, rights: Perm, class_index: int,
               meta_index: int) -> int:
        """Base IOVA of the shadow buffer with the given coordinates."""
        if not 0 <= core_id < (1 << CORE_BITS):
            raise ConfigurationError(f"core id {core_id} exceeds {CORE_BITS} bits")
        if rights not in _PERM_TO_CODE:
            raise ConfigurationError(f"unencodable rights: {rights!r}")
        if not 0 <= class_index < len(self.size_classes):
            raise ConfigurationError(f"bad size class index {class_index}")
        if not 0 <= meta_index < self.index_capacity(class_index):
            raise ConfigurationError(
                f"metadata index {meta_index} exceeds capacity for class "
                f"{self.size_classes[class_index]}"
            )
        return (
            (1 << SHADOW_FLAG_BIT)
            | (core_id << CORE_SHIFT)
            | (_PERM_TO_CODE[rights] << RIGHTS_SHIFT)
            | (class_index << self.class_shift)
            | (meta_index << self.offset_bits[class_index])
        )

    def decode(self, iova: int) -> DecodedShadowIova:
        """Recover the fields of a shadow IOVA (offset included)."""
        if not self.is_shadow(iova):
            raise ConfigurationError(f"IOVA {iova:#x} is not shadow-encoded")
        core_id = (iova >> CORE_SHIFT) & ((1 << CORE_BITS) - 1)
        rights_code = (iova >> RIGHTS_SHIFT) & ((1 << RIGHTS_BITS) - 1)
        rights = _CODE_TO_PERM.get(rights_code)
        if rights is None:
            raise ConfigurationError(f"IOVA {iova:#x} has invalid rights 00")
        class_index = (iova >> self.class_shift) & ((1 << self.class_bits) - 1)
        if class_index >= len(self.size_classes):
            raise ConfigurationError(
                f"IOVA {iova:#x} encodes unknown size class {class_index}"
            )
        off_bits = self.offset_bits[class_index]
        field = iova & ((1 << self.class_shift) - 1)
        return DecodedShadowIova(
            core_id=core_id,
            rights=rights,
            class_index=class_index,
            meta_index=field >> off_bits,
            offset=iova & ((1 << off_bits) - 1),
        )

    @staticmethod
    def is_shadow(iova: int) -> bool:
        """MSB set ⇒ shadow encoding; clear ⇒ fallback IOVA space (§5.3)."""
        return bool(iova & (1 << SHADOW_FLAG_BIT))
