"""The shadow DMA buffer pool (paper §5.3, Table 2).

A fast, scalable, NUMA-aware segregated free-list allocator of *shadow
DMA buffers* — buffers that are permanently mapped in the device's IOMMU
domain and therefore never require an unmap or IOTLB invalidation.

Structure (Figure 2):

* One **free list** per (owner core, size class, access rights).  The
  owner core acquires from the head locklessly; any core may release to
  the tail under a small tail lock on its own cache line.
* One **metadata array** per (NUMA domain, size class); a shadow buffer's
  IOVA encodes its array index, so ``find_shadow`` is O(1).
* Shadow buffers are **sticky**: a buffer always returns to the free list
  it was allocated for, keeping it NUMA-local to its owner core and —
  crucially — keeping its IOMMU mapping immutable.
* Memory for shadow buffers is allocated in **page quantities**, so every
  IOMMU-mapped page holds shadow buffers of a single free list (same
  rights) — this is what yields byte-granularity protection (§5.2).
* When a metadata array is exhausted, allocation **falls back** to
  kmalloc'ed metadata + an external IOVA allocator in the MSB-clear half
  of the space, tracked in a hash table (§5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.iova_encoding import ShadowIovaCodec
from repro.errors import (
    ConfigurationError,
    DmaApiUsageError,
    PoolExhaustedError,
    ReproError,
)
from repro.faults.plan import SITE_POOL_GROW
from repro.hw.cpu import CAT_COPY_MGMT, Core
from repro.hw.locks import SpinLock
from repro.hw.machine import Machine
from repro.iommu.iommu import Domain, Iommu
from repro.iommu.page_table import Perm
from repro.iova.base import IovaAllocator
from repro.kalloc.slab import KBuffer, KernelAllocators
from repro.obs.spans import SPAN_POOL_ACQUIRE, SPAN_POOL_RELEASE
from repro.obs.trace import EV_POOL_FALLBACK, EV_POOL_GROW, EV_POOL_SHRINK
from repro.sim.units import PAGE_SHIFT, PAGE_SIZE

ListKey = Tuple[int, int, Perm]  # (owner core id, class index, rights)


@dataclass
class ShadowBufferMeta:
    """Metadata node for one shadow buffer (Figure 2, right side).

    While the buffer is free, the node sits in its free list
    (``next_free`` is the linkage — in the paper the ``os_buf`` field
    doubles as the link; we keep both fields for clarity).  While
    acquired, ``os_buf`` points at the OS buffer being shadowed.
    """

    meta_index: int
    domain_node: int
    class_index: int
    size: int
    pa: int
    iova: int
    list_key: ListKey
    os_buf: Optional[KBuffer] = None
    next_free: Optional["ShadowBufferMeta"] = None
    fallback: bool = False

    @property
    def rights(self) -> Perm:
        return self.list_key[2]

    @property
    def owner_core(self) -> int:
        return self.list_key[0]


@dataclass
class _MetadataArray:
    """Per-(NUMA domain, size class) array of metadata nodes.

    ``next_unused`` hands out indices under a lock — shadow buffer
    allocation is infrequent, so this lock is not a contention problem
    (paper footnote 5).
    """

    node: int
    class_index: int
    capacity: int
    lock: SpinLock
    entries: List[Optional[ShadowBufferMeta]] = field(default_factory=list)

    def take_index(self) -> Optional[int]:
        if len(self.entries) >= self.capacity:
            return None
        self.entries.append(None)
        return len(self.entries) - 1

    def take_block(self, count: int) -> Optional[int]:
        """Reserve ``count`` *contiguous* indices (for sub-page carving:
        the block must cover exactly the buffers of one page so their
        encoded IOVAs share one IOVA page with matching offsets)."""
        if len(self.entries) + count > self.capacity:
            return None
        start = len(self.entries)
        self.entries.extend([None] * count)
        return start


class _FreeList:
    """One segregated free list (Figure 2, left side)."""

    __slots__ = ("key", "head", "tail", "tail_lock", "private_cache",
                 "free_count", "total_buffers")

    def __init__(self, key: ListKey, tail_lock: SpinLock):
        self.key = key
        self.head: Optional[ShadowBufferMeta] = None
        self.tail: Optional[ShadowBufferMeta] = None
        self.tail_lock = tail_lock
        #: Buffers carved from a fresh page, not yet pushed through the
        #: list (avoids synchronizing with releases — §5.3).
        self.private_cache: List[ShadowBufferMeta] = []
        self.free_count = 0
        self.total_buffers = 0

    def pop_head(self) -> Optional[ShadowBufferMeta]:
        """Owner-only lockless acquire from the head."""
        meta = self.head
        if meta is None:
            return None
        self.head = meta.next_free
        if self.head is None:
            # List drained; a concurrent release will re-link via tail.
            self.tail = None
        meta.next_free = None
        self.free_count -= 1
        return meta

    def push_tail(self, meta: ShadowBufferMeta) -> None:
        """Append under the tail lock (caller holds it)."""
        meta.next_free = None
        if self.tail is None:
            self.head = meta
            self.tail = meta
        else:
            self.tail.next_free = meta
            self.tail = meta
        self.free_count += 1


@dataclass
class PoolStats:
    """Occupancy accounting for the §6 memory-consumption experiment."""

    bytes_allocated: int = 0
    peak_bytes_allocated: int = 0
    buffers_allocated: int = 0
    in_flight: int = 0
    peak_in_flight: int = 0
    acquires: int = 0
    releases: int = 0
    remote_releases: int = 0
    grows: int = 0
    fallback_allocations: int = 0
    shrinks: int = 0

    def note_grow(self, nbytes: int, nbuffers: int) -> None:
        self.bytes_allocated += nbytes
        self.peak_bytes_allocated = max(self.peak_bytes_allocated,
                                        self.bytes_allocated)
        self.buffers_allocated += nbuffers
        self.grows += 1

    def note_shrink(self, nbytes: int, nbuffers: int) -> None:
        """Exact inverse of :meth:`note_grow`, so grow/shrink round-trips
        leave ``bytes_allocated`` and ``buffers_allocated`` balanced."""
        self.bytes_allocated -= nbytes
        self.buffers_allocated -= nbuffers
        self.shrinks += 1

    def note_acquire(self) -> None:
        self.acquires += 1
        self.in_flight += 1
        self.peak_in_flight = max(self.peak_in_flight, self.in_flight)

    def note_release(self, remote: bool) -> None:
        self.releases += 1
        self.in_flight -= 1
        if remote:
            self.remote_releases += 1


class ShadowBufferPool:
    """Per-device pool of permanently-mapped shadow DMA buffers.

    Implements the Table 2 interface: :meth:`acquire_shadow`,
    :meth:`find_shadow`, :meth:`release_shadow`.
    """

    def __init__(self, machine: Machine, iommu: Iommu, domain: Domain,
                 allocators: KernelAllocators,
                 fallback_iova: IovaAllocator,
                 size_classes: tuple[int, ...] = (4096, 65536),
                 max_buffers_per_class: int = 16 * 1024,
                 sticky: bool = True,
                 max_pool_bytes: int | None = None):
        self.machine = machine
        self.cost = machine.cost
        self.iommu = iommu
        self.domain = domain
        self.allocators = allocators
        self.fallback_iova = fallback_iova
        self.codec = ShadowIovaCodec(size_classes)
        self.size_classes = self.codec.size_classes
        self.max_buffers_per_class = max_buffers_per_class
        self.sticky = sticky
        self.max_pool_bytes = max_pool_bytes
        self.stats = PoolStats()
        self.obs = machine.obs
        self.faults = machine.faults

        self._lists: Dict[ListKey, _FreeList] = {}
        self._arrays: Dict[Tuple[int, int], _MetadataArray] = {}
        for node in range(machine.num_nodes):
            for cls in range(len(self.size_classes)):
                capacity = min(max_buffers_per_class,
                               self.codec.index_capacity(cls))
                self._arrays[(node, cls)] = _MetadataArray(
                    node=node, class_index=cls, capacity=capacity,
                    lock=SpinLock(f"meta-{node}-{cls}", machine.cost,
                                  obs=machine.obs),
                )
        #: Fallback hash table: IOVA → metadata (§5.3).
        self._fallback: Dict[int, ShadowBufferMeta] = {}

    # ------------------------------------------------------------------
    # Table 2 API.
    # ------------------------------------------------------------------
    def acquire_shadow(self, core: Core, os_buf: KBuffer, size: int,
                       rights: Perm) -> ShadowBufferMeta:
        """Acquire a shadow buffer of ≥ ``size`` bytes with ``rights``.

        Associates it with ``os_buf`` and returns its metadata (whose
        ``iova`` the DMA API hands to the driver).  The pool guarantees
        that any page holding the buffer holds only same-rights shadow
        buffers.
        """
        if rights not in (Perm.READ, Perm.WRITE, Perm.RW):
            raise ConfigurationError(f"invalid shadow rights {rights!r}")
        class_index = self.codec.class_for_size(size)
        if class_index is None:
            raise PoolExhaustedError(
                f"request of {size} B exceeds the largest size class "
                f"{self.size_classes[-1]} — huge buffers take the hybrid "
                f"path (§5.5)"
            )
        if self.obs.enabled:
            self.obs.spans.begin(SPAN_POOL_ACQUIRE, core)
        core.charge(self.cost.pool_acquire_cycles, CAT_COPY_MGMT)
        flist = self._list_for(core.cid, class_index, rights)
        meta = None
        if flist.private_cache:
            meta = flist.private_cache.pop()
        if meta is None:
            meta = flist.pop_head()
        if meta is None:
            meta = self._grow(core, flist)
        meta.os_buf = os_buf
        self.stats.note_acquire()
        if self.obs.enabled:
            self.obs.metrics.series("pool.in_flight").sample(
                core.now, self.stats.in_flight)
            self.obs.spans.end(core)
        return meta

    def find_shadow(self, core: Core, iova: int) -> ShadowBufferMeta:
        """O(1) lookup: decode the IOVA, index the metadata array.

        Fallback IOVAs (MSB clear) go through the external hash table.
        """
        core.charge(self.cost.pool_find_cycles, CAT_COPY_MGMT)
        if self.codec.is_shadow(iova):
            decoded = self.codec.decode(iova)
            node = self.machine.node_of_core(decoded.core_id)
            array = self._arrays[(node, decoded.class_index)]
            if decoded.meta_index >= len(array.entries):
                raise PoolExhaustedError(
                    f"IOVA {iova:#x} decodes past the metadata array"
                )
            meta = array.entries[decoded.meta_index]
            if meta is None:
                raise PoolExhaustedError(f"IOVA {iova:#x} has dead metadata")
            return meta
        # Fallback buffers are stored under exactly ``meta.iova`` (the
        # external IOVA plus the buffer's sub-page offset).  Looking up
        # the page base as well would let a stale or corrupted IOVA
        # resolve to a *different* buffer sharing the page — one
        # canonical key keeps misuse loud.
        meta = self._fallback.get(iova)
        if meta is None:
            raise PoolExhaustedError(f"unknown fallback IOVA {iova:#x}")
        return meta

    def release_shadow(self, core: Core, meta: ShadowBufferMeta) -> None:
        """Return a shadow buffer to its free list (sticky — §5.3)."""
        if meta.os_buf is None:
            raise DmaApiUsageError(
                f"double release of shadow buffer IOVA {meta.iova:#x}")
        remote = core.cid != meta.owner_core
        if self.obs.enabled:
            self.obs.spans.begin(SPAN_POOL_RELEASE, core)
        core.charge(self.cost.pool_release_cycles, CAT_COPY_MGMT)
        if remote:
            core.charge(self.cost.pool_remote_release_cycles, CAT_COPY_MGMT)
        meta.os_buf = None
        self.stats.note_release(remote)
        if self.obs.enabled:
            self.obs.metrics.series("pool.in_flight").sample(
                core.now, self.stats.in_flight)
        if (not self.sticky and remote and not meta.fallback
                and meta.size >= PAGE_SIZE):
            # Sub-page buffers are never migrated: their page mapping is
            # shared with siblings of the same list.
            self._migrate_to_core(core, meta)
            if self.obs.enabled:
                self.obs.spans.end(core)
            return
        flist = self._lists[meta.list_key]
        flist.tail_lock.acquire(core)
        flist.push_tail(meta)
        flist.tail_lock.release(core)
        if self.obs.enabled:
            self.obs.spans.end(core)

    # ------------------------------------------------------------------
    # Growth (slow path, §5.3 "Shadow buffer allocation").
    # ------------------------------------------------------------------
    def _list_for(self, core_id: int, class_index: int,
                  rights: Perm) -> _FreeList:
        key: ListKey = (core_id, class_index, rights)
        flist = self._lists.get(key)
        if flist is None:
            flist = _FreeList(key, SpinLock(f"tail-{key}", self.cost,
                                            obs=self.obs))
            self._lists[key] = flist
        return flist

    def _grow(self, core: Core, flist: _FreeList) -> ShadowBufferMeta:
        """Allocate fresh shadow buffers for ``flist`` on this core's node."""
        core_id, class_index, rights = flist.key
        size = self.size_classes[class_index]
        node = self.machine.node_of_core(core_id)
        alloc_bytes = max(size, PAGE_SIZE)
        if self.faults.enabled and self.faults.fires(SITE_POOL_GROW, core):
            raise PoolExhaustedError(
                "injected shadow-pool grow failure (fault plan)")
        if (self.max_pool_bytes is not None
                and self.stats.bytes_allocated + alloc_bytes > self.max_pool_bytes):
            raise PoolExhaustedError(
                f"pool memory limit {self.max_pool_bytes} B reached"
            )
        core.charge(self.cost.pool_grow_cycles, CAT_COPY_MGMT)
        # Page-quantity allocation from the owner core's NUMA node.
        order = max(0, (alloc_bytes - 1).bit_length() - PAGE_SHIFT)
        pa = self.allocators.buddies[node].alloc_pages(order, core)
        try:
            if size < PAGE_SIZE:
                nbuffers = PAGE_SIZE // size
                metas = self._carve_page(core, flist, pa, node, nbuffers)
            else:
                nbuffers = 1
                metas = [self._make_meta(core, flist, pa, node)]
        except ReproError:
            # Metadata/IOVA/page-table failure after the page grant: the
            # fresh pages must go back or the buddy leaks under soak.
            self.allocators.buddies[node].free_pages(pa, core)
            raise
        self.stats.note_grow(alloc_bytes, nbuffers)
        if self.obs.enabled:
            self.obs.tracer.emit(EV_POOL_GROW, core.now, core.cid,
                                 size_class=size, nbytes=alloc_bytes,
                                 nbuffers=nbuffers, rights=rights.name)
            self.obs.metrics.counter("pool.grows").inc()
            self.obs.metrics.series("pool.bytes_allocated").sample(
                core.now, self.stats.bytes_allocated)
        # One buffer is returned; the rest go to the private cache so we
        # need not synchronize with concurrent releases (§5.3).
        result = metas[0]
        flist.private_cache.extend(metas[1:])
        flist.total_buffers += nbuffers
        return result

    def _carve_page(self, core: Core, flist: _FreeList, page_pa: int,
                    node: int, nbuffers: int) -> List[ShadowBufferMeta]:
        """Break one page into ``nbuffers`` sub-page shadow buffers.

        All buffers of the page belong to one free list (hence one rights
        value — the §5.2 invariant) and take a *contiguous, page-aligned*
        block of metadata indices, so their encoded IOVAs tile a single
        IOVA page whose mapping is installed exactly once.
        """
        core_id, class_index, rights = flist.key
        size = self.size_classes[class_index]
        array = self._arrays[(node, class_index)]
        array.lock.acquire(core)
        start = array.take_block(nbuffers)
        array.lock.release(core)
        if start is None or start % nbuffers:
            # Array exhausted (or an incompatible layout from a previous
            # configuration): fall back buffer by buffer, unwinding the
            # earlier siblings if one of them fails mid-carve.
            built: List[ShadowBufferMeta] = []
            try:
                for i in range(nbuffers):
                    built.append(self._make_fallback_meta(
                        core, flist, page_pa + i * size, node))
            except ReproError:
                for meta in built:
                    base = meta.iova & ~(PAGE_SIZE - 1)
                    span = max(meta.size + (meta.iova - base), PAGE_SIZE)
                    self.iommu.unmap_range(self.domain, base, span, core)
                    self.iommu.invalidation_queue.invalidate_sync(
                        core, self.domain.domain_id, base >> PAGE_SHIFT,
                        max(1, span >> PAGE_SHIFT))
                    self._retire_meta(core, meta)
                raise
            return built
        metas: List[ShadowBufferMeta] = []
        for i in range(nbuffers):
            iova = self.codec.encode(core_id, rights, class_index, start + i)
            meta = ShadowBufferMeta(
                meta_index=start + i, domain_node=node,
                class_index=class_index, size=size,
                pa=page_pa + i * size, iova=iova, list_key=flist.key,
            )
            array.entries[start + i] = meta
            metas.append(meta)
        # One page-granular mapping covers every carved buffer.
        try:
            self.iommu.map_range(self.domain, metas[0].iova, page_pa,
                                 PAGE_SIZE, rights, core, kind="dedicated")
        except ReproError:
            array.lock.acquire(core)
            if len(array.entries) == start + nbuffers:
                del array.entries[start:]
            else:
                for i in range(nbuffers):
                    array.entries[start + i] = None
            array.lock.release(core)
            raise
        return metas

    def _make_meta(self, core: Core, flist: _FreeList, pa: int,
                   node: int) -> ShadowBufferMeta:
        core_id, class_index, rights = flist.key
        size = self.size_classes[class_index]
        array = self._arrays[(node, class_index)]
        array.lock.acquire(core)
        index = array.take_index()
        array.lock.release(core)
        if index is None:
            return self._make_fallback_meta(core, flist, pa, node)
        iova = self.codec.encode(core_id, rights, class_index, index)
        try:
            self.iommu.map_range(self.domain, iova, pa, size, rights, core,
                                 kind="dedicated")
        except ReproError:
            array.lock.acquire(core)
            if index == len(array.entries) - 1 \
                    and array.entries[index] is None:
                array.entries.pop()
            array.lock.release(core)
            raise
        meta = ShadowBufferMeta(
            meta_index=index, domain_node=node, class_index=class_index,
            size=size, pa=pa, iova=iova, list_key=flist.key,
        )
        array.entries[index] = meta
        return meta

    def _make_fallback_meta(self, core: Core, flist: _FreeList, pa: int,
                            node: int) -> ShadowBufferMeta:
        """§5.3 fallback: metadata via kmalloc, IOVA from the external
        allocator (MSB-clear half), mapping tracked in a hash table."""
        core_id, class_index, rights = flist.key
        size = self.size_classes[class_index]
        npages = max(1, size >> PAGE_SHIFT)
        # The kmalloc'ed metadata structure itself (cost accounting only —
        # the Python object plays the role of the allocation).
        self.allocators.slabs[node].kmalloc(64, core)
        page_pa = (pa >> PAGE_SHIFT) << PAGE_SHIFT
        offset = pa - page_pa
        iova_base = self.fallback_iova.alloc(npages, core, page_pa)
        # Sub-page buffers map their whole (same-rights) page; larger
        # buffers map exactly their pages.
        try:
            self.iommu.map_range(self.domain, iova_base, page_pa,
                                 max(size + offset, PAGE_SIZE), rights, core,
                                 kind="dedicated")
        except ReproError:
            self.fallback_iova.free(iova_base, npages, core)
            raise
        iova = iova_base + offset
        meta = ShadowBufferMeta(
            meta_index=-1, domain_node=node, class_index=class_index,
            size=size, pa=pa, iova=iova, list_key=flist.key, fallback=True,
        )
        self._fallback[iova] = meta
        self.stats.fallback_allocations += 1
        if self.obs.enabled:
            self.obs.tracer.emit(EV_POOL_FALLBACK, core.now, core.cid,
                                 size_class=size, iova=iova,
                                 rights=rights.name)
            self.obs.metrics.counter("pool.fallback_allocations").inc()
        return meta

    # ------------------------------------------------------------------
    # Non-sticky ablation (§5.3 explains why sticky wins; this path
    # exists to measure the alternative).
    # ------------------------------------------------------------------
    def _migrate_to_core(self, core: Core, meta: ShadowBufferMeta) -> None:
        """Move a buffer to the *releasing* core's list.

        Requires re-encoding the IOVA (it names the owner core), hence
        unmapping the old mapping, invalidating the IOTLB, and installing
        a new mapping — exactly the costs stickiness avoids.
        """
        _, class_index, rights = meta.list_key
        self.iommu.unmap_range(self.domain, meta.iova, meta.size, core)
        self.iommu.invalidation_queue.invalidate_sync(
            core, self.domain.domain_id, meta.iova >> PAGE_SHIFT,
            max(1, meta.size >> PAGE_SHIFT))
        self._retire_meta(core, meta)
        old_list = self._lists[meta.list_key]
        old_list.total_buffers -= 1
        new_list = self._list_for(core.cid, class_index, rights)
        new_meta = self._make_meta(core, new_list, meta.pa,
                                   self.machine.node_of_core(core.cid))
        new_list.total_buffers += 1
        new_list.tail_lock.acquire(core)
        new_list.push_tail(new_meta)
        new_list.tail_lock.release(core)

    def _retire_meta(self, core: Core, meta: ShadowBufferMeta) -> None:
        if meta.fallback:
            self._fallback.pop(meta.iova, None)
            # Fallback IOVAs are recyclable (encoded indices are not):
            # return the page-aligned range taken in _make_fallback_meta,
            # or the external allocator leaks one range per retired
            # fallback buffer.
            npages = max(1, meta.size >> PAGE_SHIFT)
            base = meta.iova & ~(PAGE_SIZE - 1)
            self.fallback_iova.free(base, npages, core)
            return
        array = self._arrays[(meta.domain_node, meta.class_index)]
        array.entries[meta.meta_index] = None

    # ------------------------------------------------------------------
    # Memory pressure (§5.3 "Memory consumption").
    # ------------------------------------------------------------------
    def shrink(self, core: Core, max_release_bytes: int | None = None) -> int:
        """Free unused shadow buffers back to the system.

        Unmaps each freed buffer (with a synchronous IOTLB invalidation —
        the price §5.3 accepts for infrequent pressure-driven freeing).
        Only whole-page buffers are released.  Returns bytes freed.
        """
        freed = 0
        for flist in self._lists.values():
            size = self.size_classes[flist.key[1]]
            if size < PAGE_SIZE:
                continue
            while True:
                if max_release_bytes is not None and freed >= max_release_bytes:
                    return freed
                flist.tail_lock.acquire(core)
                meta = flist.pop_head()
                flist.tail_lock.release(core)
                if meta is None:
                    break
                self.iommu.unmap_range(self.domain, meta.iova, meta.size,
                                       core)
                self.iommu.invalidation_queue.invalidate_sync(
                    core, self.domain.domain_id, meta.iova >> PAGE_SHIFT,
                    max(1, meta.size >> PAGE_SHIFT))
                self._retire_meta(core, meta)
                node = self.machine.memory.node_of(meta.pa)
                self.allocators.buddies[node].free_pages(meta.pa, core)
                flist.total_buffers -= 1
                # Undo exactly what note_grow recorded: page-quantity
                # bytes and the buffer count.
                released = max(meta.size, PAGE_SIZE)
                self.stats.note_shrink(released, 1)
                freed += released
                if self.obs.enabled:
                    self.obs.tracer.emit(EV_POOL_SHRINK, core.now, core.cid,
                                         size=meta.size,
                                         fallback=meta.fallback)
                    self.obs.metrics.series("pool.bytes_allocated").sample(
                        core.now, self.stats.bytes_allocated)
        return freed

    # ------------------------------------------------------------------
    # Invariants (exercised by property tests).
    # ------------------------------------------------------------------
    def check_page_rights_invariant(self) -> bool:
        """Every IOMMU-mapped page holds shadow buffers of one rights value."""
        page_rights: Dict[int, Perm] = {}
        for flist in self._lists.values():
            rights = flist.key[2]
            for meta in self._iter_list_buffers(flist):
                for page in range(meta.pa >> PAGE_SHIFT,
                                  (meta.pa + meta.size - 1 >> PAGE_SHIFT) + 1):
                    seen = page_rights.get(page)
                    if seen is not None and seen != rights:
                        return False
                    page_rights[page] = rights
        return True

    def _iter_list_buffers(self, flist: _FreeList):
        seen = set()
        node = flist.head
        while node is not None:
            seen.add(id(node))
            yield node
            node = node.next_free
        for meta in flist.private_cache:
            if id(meta) not in seen:
                yield meta

    def free_buffer_count(self) -> int:
        return sum(f.free_count + len(f.private_cache)
                   for f in self._lists.values())
