"""Networking substrate: frames, descriptor rings, NIC model, driver."""

from repro.net.driver import DriverStats, NicDriver
from repro.net.nic import Nic, NicStats
from repro.net.packets import (
    HEADERS_LEN,
    ParsedFrame,
    build_frame,
    max_payload,
    parse_frame,
    segment_payload,
)
from repro.net.ring import (
    DESC_SIZE,
    FLAG_DONE,
    FLAG_EOP,
    FLAG_READY,
    Descriptor,
    DescriptorRing,
)

__all__ = [
    "Nic",
    "NicStats",
    "NicDriver",
    "DriverStats",
    "DescriptorRing",
    "Descriptor",
    "DESC_SIZE",
    "FLAG_READY",
    "FLAG_DONE",
    "FLAG_EOP",
    "build_frame",
    "parse_frame",
    "ParsedFrame",
    "segment_payload",
    "max_payload",
    "HEADERS_LEN",
]
