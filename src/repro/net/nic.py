"""40 Gb/s NIC device model.

Models the evaluated machine's Intel Fortville XL710 at the level the
paper cares about: multi-queue RX/TX descriptor rings, MTU-sized receive
buffers, and TSO on transmit (the driver hands the NIC up to 64 KB, the
NIC segments to MTU on the wire — §6 "Single-core TCP throughput").

The NIC is *hardware*: every byte it touches — descriptors and payloads —
moves through its :class:`~repro.iommu.iommu.DmaPort`, i.e. through the
IOMMU when one is configured.  It is also the component the attack
framework subclasses to become malicious.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import IommuFault, SimulationError
from repro.faults.injector import NULL_FAULTS
from repro.faults.plan import SITE_NIC_RX_DROP
from repro.iommu.iommu import DmaPort
from repro.net.ring import FLAG_DONE, FLAG_EOP, FLAG_READY, Descriptor, DescriptorRing
from repro.obs.context import NULL_OBS
from repro.obs.requests import MARK_DEVICE_TRANSLATED
from repro.sim.units import ETH_MTU, TSO_MAX_BYTES


@dataclass
class NicStats:
    rx_frames: int = 0
    rx_bytes: int = 0
    rx_drops_no_descriptor: int = 0
    rx_drops_too_big: int = 0
    rx_drops_injected: int = 0
    rx_drops_faulted: int = 0
    tx_faulted_packets: int = 0
    tx_frames: int = 0
    tx_bytes: int = 0
    tx_wire_segments: int = 0


@dataclass
class _QueueState:
    rx_ring: Optional[DescriptorRing] = None
    tx_ring: Optional[DescriptorRing] = None
    rx_next: int = 0  # device-side RX consume cursor
    tx_next: int = 0  # device-side TX consume cursor
    #: Payloads kept for inspection when ``keep_frames`` is on.
    tx_log: List[bytes] = field(default_factory=list)


class Nic:
    """The device side of the network interface."""

    def __init__(self, device_id: int, port: DmaPort, num_queues: int = 1,
                 mtu: int = ETH_MTU, tso: bool = True,
                 keep_frames: bool = False):
        if num_queues < 1:
            raise SimulationError("NIC needs at least one queue")
        self.device_id = device_id
        self.port = port
        self.num_queues = num_queues
        self.mtu = mtu
        self.tso = tso
        self.keep_frames = keep_frames
        self.stats = NicStats()
        #: Observability context (the driver shares its own) and the OS
        #: core whose request the current device interaction serves —
        #: the NIC has no clock, so request marks borrow that core's.
        self.obs = NULL_OBS
        self.dma_core = None
        #: Fault injector (rebound by System.build; NULL_FAULTS → no-op).
        self.faults = NULL_FAULTS
        self._queues: Dict[int, _QueueState] = {
            q: _QueueState() for q in range(num_queues)
        }

    def attach_rings(self, qid: int, rx_ring: DescriptorRing,
                     tx_ring: DescriptorRing) -> None:
        state = self._queue(qid)
        state.rx_ring = rx_ring
        state.tx_ring = tx_ring

    def _queue(self, qid: int) -> _QueueState:
        try:
            return self._queues[qid]
        except KeyError:
            raise SimulationError(f"NIC has no queue {qid}") from None

    # ------------------------------------------------------------------
    # Receive path (wire → host memory).
    # ------------------------------------------------------------------
    def receive_frame(self, qid: int, frame: bytes) -> bool:
        """A frame arrives from the wire; DMA it into the next RX buffer.

        Returns ``False`` (and counts a drop) when no armed descriptor is
        available or the buffer is too small — real NIC behaviour, and
        also what a protection fault turns into from the wire's viewpoint.
        """
        state = self._queue(qid)
        ring = state.rx_ring
        if ring is None:
            raise SimulationError(f"queue {qid} has no RX ring")
        if self.faults.enabled and self.faults.fires(SITE_NIC_RX_DROP,
                                                     self.dma_core):
            # Injected wire-side loss: the frame evaporates before the
            # NIC touches a descriptor (models PHY/MAC drops).
            self.stats.rx_drops_injected += 1
            return False
        if state.rx_next >= ring.tail:
            self.stats.rx_drops_no_descriptor += 1
            return False
        desc = ring.device_read(self.port, state.rx_next)
        if not desc.ready:
            self.stats.rx_drops_no_descriptor += 1
            return False
        if len(frame) > desc.length:
            self.stats.rx_drops_too_big += 1
            return False
        try:
            self.port.dma_write(desc.addr, frame)
        except IommuFault:
            # The IOMMU blocked the payload DMA (revoked/expired
            # mapping): from the wire's viewpoint the frame is simply
            # lost.  The descriptor stays armed — hardware retries it.
            self.stats.rx_drops_faulted += 1
            return False
        if self.obs.enabled and self.dma_core is not None:
            self.obs.requests.mark(self.dma_core, MARK_DEVICE_TRANSLATED)
        ring.device_write_back(self.port, state.rx_next, Descriptor(
            addr=desc.addr, length=len(frame),
            flags=FLAG_DONE | FLAG_EOP))
        state.rx_next += 1
        self.stats.rx_frames += 1
        self.stats.rx_bytes += len(frame)
        return True

    # ------------------------------------------------------------------
    # Transmit path (host memory → wire).
    # ------------------------------------------------------------------
    def transmit_pending(self, qid: int) -> int:
        """Consume armed TX descriptors; returns wire segments emitted.

        With TSO a descriptor may describe up to 64 KB; the NIC reads the
        payload by DMA and segments it into MTU frames internally.
        """
        state = self._queue(qid)
        ring = state.tx_ring
        if ring is None:
            raise SimulationError(f"queue {qid} has no TX ring")
        segments = 0
        limit = TSO_MAX_BYTES if self.tso else self.mtu
        # Scatter-gather elements of one packet; None = poisoned by a
        # blocked payload fetch (the packet errors out at EOP).
        gather: Optional[List[bytes]] = []
        gathered_bytes = 0
        while state.tx_next < ring.tail:
            desc = ring.device_read(self.port, state.tx_next)
            if not desc.ready:
                break
            if gathered_bytes + desc.length > limit:
                raise SimulationError(
                    f"TX packet of {gathered_bytes + desc.length} B "
                    f"exceeds NIC limit"
                )
            if gather is not None:
                try:
                    gather.append(self.port.dma_read(desc.addr,
                                                     desc.length))
                except IommuFault:
                    # Blocked payload fetch: the NIC reports the
                    # descriptor done (so the driver reaps and recovers
                    # the ring slot) but emits nothing on the wire — a
                    # TX error, not a hang.  ``None`` poisons the rest
                    # of this scatter-gather packet.
                    gather = None
            if self.obs.enabled and self.dma_core is not None:
                self.obs.requests.mark(self.dma_core,
                                       MARK_DEVICE_TRANSLATED)
            gathered_bytes += desc.length
            ring.device_write_back(self.port, state.tx_next, Descriptor(
                addr=desc.addr, length=desc.length,
                flags=desc.flags | FLAG_DONE))
            state.tx_next += 1
            if not desc.flags & FLAG_EOP:
                continue  # more scatter-gather elements follow
            if gather is None:
                self.stats.tx_faulted_packets += 1
                gather = []
                gathered_bytes = 0
                continue
            payload = b"".join(gather) if len(gather) > 1 else gather[0]
            gather = []
            gathered_bytes = 0
            if self.keep_frames:
                state.tx_log.append(payload)
            nsegs = max(1, -(-len(payload) // self.mtu))
            segments += nsegs
            self.stats.tx_frames += 1
            self.stats.tx_bytes += len(payload)
            self.stats.tx_wire_segments += nsegs
        if gather:
            raise SimulationError("TX ring ended mid scatter-gather packet")
        return segments

    def tx_log(self, qid: int) -> List[bytes]:
        """Transmitted payloads (only populated with ``keep_frames``)."""
        return self._queue(qid).tx_log
