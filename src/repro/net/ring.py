"""DMA descriptor rings over ``dma_alloc_coherent`` memory.

A descriptor ring is the canonical driver↔device shared structure (§2.2):
the driver writes descriptors (bus address, length, flags) into a
coherent buffer; the device reads them — *through its DMA port, i.e.
through the IOMMU* — fetches or fills the described buffers, and writes
completion status back.  Nothing in the datapath bypasses translation,
so a misbehaving device model faults exactly where real hardware would.

Descriptor layout (16 bytes, little endian): ``addr:u64 len:u32 flags:u32``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.dma.api import CoherentBuffer, DmaApi
from repro.errors import ConfigurationError, SimulationError
from repro.hw.cpu import Core
from repro.hw.machine import Machine
from repro.iommu.iommu import DmaPort

DESC_SIZE = 16
_DESC_FMT = "<QII"

#: Descriptor flag bits.
FLAG_READY = 0x1   # driver → device: descriptor is armed
FLAG_DONE = 0x2    # device → driver: DMA completed
FLAG_EOP = 0x4     # end of packet


@dataclass(frozen=True)
class Descriptor:
    """One decoded ring descriptor."""

    addr: int
    length: int
    flags: int

    @property
    def ready(self) -> bool:
        return bool(self.flags & FLAG_READY)

    @property
    def done(self) -> bool:
        return bool(self.flags & FLAG_DONE)


class DescriptorRing:
    """A cyclic buffer of descriptors in coherent memory.

    The driver-side accessors (:meth:`write_descriptor`,
    :meth:`read_descriptor`) touch the coherent buffer via plain CPU
    memory access; the device-side accessors (:meth:`device_read`,
    :meth:`device_write_flags`) go through the device's :class:`DmaPort`.
    """

    def __init__(self, machine: Machine, dma_api: DmaApi, core: Core,
                 entries: int, name: str = "ring", node: int = 0):
        if entries < 2 or entries & (entries - 1):
            raise ConfigurationError("ring size must be a power of two ≥ 2")
        self.machine = machine
        self.name = name
        self.entries = entries
        self.coherent: CoherentBuffer = dma_api.dma_alloc_coherent(
            core, entries * DESC_SIZE, node=node)
        self._dma_api = dma_api
        # Driver-side cursors.
        self.head = 0  # next descriptor the device will consume
        self.tail = 0  # next descriptor the driver will post

    def free(self, core: Core) -> None:
        self._dma_api.dma_free_coherent(core, self.coherent)

    # ------------------------------------------------------------------
    # Driver (CPU) side — direct memory access to the coherent buffer.
    # ------------------------------------------------------------------
    def _slot_pa(self, index: int) -> int:
        return self.coherent.kbuf.pa + (index % self.entries) * DESC_SIZE

    def _slot_iova(self, index: int) -> int:
        return self.coherent.iova + (index % self.entries) * DESC_SIZE

    def write_descriptor(self, index: int, desc: Descriptor) -> None:
        raw = struct.pack(_DESC_FMT, desc.addr, desc.length, desc.flags)
        self.machine.memory.write(self._slot_pa(index), raw)

    def read_descriptor(self, index: int) -> Descriptor:
        raw = self.machine.memory.read(self._slot_pa(index), DESC_SIZE)
        addr, length, flags = struct.unpack(_DESC_FMT, raw)
        return Descriptor(addr=addr, length=length, flags=flags)

    def post(self, desc: Descriptor) -> int:
        """Driver arms the next slot; returns its index."""
        if self.tail - self.head >= self.entries:
            raise SimulationError(f"ring {self.name} overflow")
        index = self.tail
        self.write_descriptor(index, desc)
        self.tail += 1
        return index

    def reap(self) -> tuple[int, Descriptor] | None:
        """Driver consumes the oldest completed descriptor, if any."""
        if self.head == self.tail:
            return None
        desc = self.read_descriptor(self.head)
        if not desc.done:
            return None
        index = self.head
        self.head += 1
        return index, desc

    @property
    def outstanding(self) -> int:
        return self.tail - self.head

    # ------------------------------------------------------------------
    # Device side — all access through the DMA port (IOMMU-checked).
    # ------------------------------------------------------------------
    def device_read(self, port: DmaPort, index: int) -> Descriptor:
        raw = port.dma_read(self._slot_iova(index), DESC_SIZE)
        addr, length, flags = struct.unpack(_DESC_FMT, raw)
        return Descriptor(addr=addr, length=length, flags=flags)

    def device_write_back(self, port: DmaPort, index: int,
                          desc: Descriptor) -> None:
        raw = struct.pack(_DESC_FMT, desc.addr, desc.length, desc.flags)
        port.dma_write(self._slot_iova(index), raw)
