"""NIC device driver — the OS side of the datapath.

The driver is the DMA API's client, and the place where the paper's
per-packet costs are incurred:

* **RX**: post page-sized MTU buffers (allocated fresh, ``dma_map``ed
  ``FROM_DEVICE``); on completion ``dma_unmap`` (where zero-copy schemes
  pay page-table + invalidation costs and the copy scheme pays the
  copy-back), hand the buffer to the stack, free it, and refill the ring.
* **TX**: ``dma_map`` the (up to 64 KB, TSO) chunk ``TO_DEVICE``, post a
  descriptor, let the NIC transmit, then ``dma_unmap`` on completion.

The driver is scheme-agnostic — it sees only the abstract
:class:`~repro.dma.api.DmaApi` (transparency, §5.1).  If the scheme is
DMA shadowing it registers the paper's IP-length copying hint (§5.4),
which a driver is allowed to do but never required to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.hints import ip_length_hint
from repro.core.shadow_dma import ShadowDmaApi
from repro.dma.api import DmaApi, DmaDirection, DmaHandle
from repro.errors import ReproError, SimulationError
from repro.faults.plan import SITE_RING_OVERFLOW
from repro.hw.cpu import CAT_OTHER, CAT_RX_PARSE, Core
from repro.hw.machine import Machine
from repro.kalloc.slab import KBuffer, KernelAllocators
from repro.net.nic import Nic
from repro.net.packets import parse_frame
from repro.net.ring import FLAG_EOP, FLAG_READY, Descriptor, DescriptorRing
from repro.obs.requests import REQ_RX, REQ_TX
from repro.obs.spans import (SPAN_DEVICE_ACCESS, SPAN_RX_PACKET,
                             SPAN_TX_CHUNK)
from repro.obs.trace import EV_FAULT_RECOVER, EV_NET_RX, EV_NET_TX
from repro.sim.units import PAGE_SIZE


@dataclass
class _RxSlot:
    buf: KBuffer
    handle: DmaHandle


@dataclass
class _TxSlot:
    buf: KBuffer
    handle: DmaHandle
    free_buffer: bool
    #: For scatter-gather sends: the whole-chunk allocation to free once
    #: this (final) element completes.
    parent: Optional[KBuffer] = None


@dataclass
class DriverStats:
    rx_packets: int = 0
    rx_bytes: int = 0
    tx_chunks: int = 0
    tx_bytes: int = 0
    #: Error-path accounting (fault injection / resource pressure).
    rx_refill_failures: int = 0
    rx_refill_recoveries: int = 0
    tx_map_failures: int = 0
    tx_ring_recoveries: int = 0
    tx_dropped_chunks: int = 0


class NicDriver:
    """Driver for :class:`~repro.net.nic.Nic` over any protection scheme."""

    def __init__(self, machine: Machine, allocators: KernelAllocators,
                 dma_api: DmaApi, nic: Nic,
                 rx_ring_size: int = 512, tx_ring_size: int = 512,
                 rx_buf_size: int = 2048,
                 use_copy_hints: bool = True):
        self.machine = machine
        self.cost = machine.cost
        self.allocators = allocators
        self.dma_api = dma_api
        self.nic = nic
        self.rx_ring_size = rx_ring_size
        self.tx_ring_size = tx_ring_size
        #: Size of one posted RX buffer.  Allocated in whole pages so each
        #: buffer owns its page(s), like high-performance NIC drivers do —
        #: see DESIGN.md (the sub-page co-location scenario is exercised
        #: by the attack framework's driver instead).  The default fits an
        #: MTU frame; latency (LRO) configurations use larger buffers.
        self.rx_buf_size = rx_buf_size
        self._rx_buf_order = max(0, ((rx_buf_size + PAGE_SIZE - 1)
                                     // PAGE_SIZE - 1).bit_length())
        self.obs = machine.obs
        #: The NIC shares the driver's observability context so device
        #: interactions can stamp request marks (device_translated).
        nic.obs = self.obs
        #: Lazy observability: the context's ``enabled`` flag is fixed at
        #: construction, so an untraced driver binds the fast per-packet
        #: paths once instead of testing ``obs.enabled`` per packet.  The
        #: zero-overhead suite proves both variants charge identically.
        if not self.obs.enabled:
            self.receive_one = self._receive_one_fast
            self.transmit_one = self._transmit_one_fast
        self.stats = DriverStats()
        self.faults = machine.faults
        #: Per-queue count of RX descriptors we failed to repost — the
        #: driver owes the ring these buffers and repays them on the
        #: next successful refill (ring recovery, not a leak).
        self._rx_deficit: Dict[int, int] = {}
        self._rx_rings: Dict[int, DescriptorRing] = {}
        self._tx_rings: Dict[int, DescriptorRing] = {}
        self._rx_slots: Dict[int, Dict[int, _RxSlot]] = {}
        self._tx_slots: Dict[int, Dict[int, _TxSlot]] = {}
        if use_copy_hints and isinstance(dma_api, ShadowDmaApi):
            dma_api.register_copy_hint(DmaDirection.FROM_DEVICE,
                                       ip_length_hint)

    # ------------------------------------------------------------------
    # Setup / teardown.
    # ------------------------------------------------------------------
    def setup_queue(self, core: Core, qid: int) -> None:
        """Allocate this queue's rings and fill the RX ring with buffers."""
        node = core.numa_node
        rx = DescriptorRing(self.machine, self.dma_api, core,
                            self.rx_ring_size, name=f"rx{qid}", node=node)
        tx = DescriptorRing(self.machine, self.dma_api, core,
                            self.tx_ring_size, name=f"tx{qid}", node=node)
        self._rx_rings[qid] = rx
        self._tx_rings[qid] = tx
        self._rx_slots[qid] = {}
        self._tx_slots[qid] = {}
        self.nic.attach_rings(qid, rx, tx)
        self._rx_deficit[qid] = 0
        for _ in range(self.rx_ring_size - 1):
            self._post_rx_buffer(core, qid, strict=True)

    def teardown_queue(self, core: Core, qid: int) -> None:
        """Unmap and free everything the queue still holds."""
        for slot in self._rx_slots[qid].values():
            self.dma_api.dma_unmap(core, slot.handle)
            self.allocators.buddies[slot.buf.node].free_pages(
                slot.buf.pa, core)
        self._rx_slots[qid].clear()
        self.reap_tx(core, qid)
        if self._tx_slots[qid]:
            raise SimulationError("teardown with un-reaped TX slots")
        self._rx_rings.pop(qid).free(core)
        self._tx_rings.pop(qid).free(core)
        self._rx_deficit.pop(qid, None)

    # ------------------------------------------------------------------
    # RX path.
    # ------------------------------------------------------------------
    def _post_rx_buffer(self, core: Core, qid: int,
                        strict: bool = False) -> bool:
        """Allocate, map, and arm one RX buffer.

        Returns ``False`` on map failure (pages are returned to the buddy
        — nothing leaks); with ``strict`` the failure propagates instead,
        which setup uses so a broken queue never half-exists.
        """
        node = core.numa_node
        pa = self.allocators.buddies[node].alloc_pages(self._rx_buf_order,
                                                       core)
        buf = KBuffer(pa=pa, size=self.rx_buf_size, node=node)
        try:
            handle = self.dma_api.dma_map(core, buf,
                                          DmaDirection.FROM_DEVICE)
        except ReproError:
            self.allocators.buddies[node].free_pages(pa, core)
            if strict:
                raise
            self.stats.rx_refill_failures += 1
            return False
        ring = self._rx_rings[qid]
        index = ring.post(Descriptor(addr=handle.iova,
                                     length=self.rx_buf_size,
                                     flags=FLAG_READY))
        self._rx_slots[qid][index] = _RxSlot(buf=buf, handle=handle)
        core.charge(self.cost.rx_refill_cycles, CAT_OTHER)
        return True

    def _refill_rx(self, core: Core, qid: int) -> None:
        """Repost the just-consumed descriptor plus any owed deficit.

        A failed repost is remembered (the ring slowly drains — graceful
        degradation); once maps succeed again the deficit is repaid and
        the ring returns to full depth.
        """
        owed = 1 + self._rx_deficit.get(qid, 0)
        posted = 0
        while posted < owed:
            if not self._post_rx_buffer(core, qid):
                break
            posted += 1
        self._rx_deficit[qid] = owed - posted
        recovered = max(0, posted - 1)
        if recovered:
            self.stats.rx_refill_recoveries += recovered
            if self.obs.enabled:
                self.obs.tracer.emit(EV_FAULT_RECOVER, core.now, core.cid,
                                     site="rx.refill", action="repost",
                                     recovered=recovered)
                self.obs.metrics.counter(
                    "faults.recovered.rx_refill").inc(recovered)

    def receive_one(self, core: Core, qid: int, frame: bytes) -> Optional[int]:
        """Deliver ``frame`` from the wire and run full RX processing.

        Returns the TCP payload length (``None`` if the NIC dropped the
        frame).  Covers: device DMA, ``dma_unmap`` (the protection cost),
        header parsing, and ring refill.  Stack/socket costs above the
        driver are charged by the workload layer.
        """
        if self.obs.enabled:
            self.obs.requests.begin(core, REQ_RX, qid=qid,
                                    nbytes=len(frame))
            self.nic.dma_core = core
            self.obs.spans.begin(SPAN_RX_PACKET, core)
            self.obs.spans.begin(SPAN_DEVICE_ACCESS, core)
        accepted = self.nic.receive_frame(qid, frame)
        if self.obs.enabled:
            self.obs.spans.end(core)        # device_access
        if not accepted:
            if self.obs.enabled:
                self.obs.spans.end(core)    # rx_packet (dropped frame)
                self.obs.requests.end(core)
            return None
        reaped = self._rx_rings[qid].reap()
        if reaped is None:
            raise SimulationError("NIC signalled RX but ring has no completion")
        index, desc = reaped
        slot = self._rx_slots[qid].pop(index)
        # Unmap first — after this the OS owns the buffer (§2.2).  For
        # the copy scheme this is where the shadow→OS copy happens.
        self.dma_api.dma_unmap(core, slot.handle)
        core.charge(self.cost.rx_parse_cycles, CAT_RX_PARSE)
        parsed = parse_frame(self.machine.memory.read(slot.buf.pa,
                                                      desc.length))
        self.stats.rx_packets += 1
        self.stats.rx_bytes += desc.length
        if self.obs.enabled:
            self.obs.tracer.emit(EV_NET_RX, core.now, core.cid, qid=qid,
                                 nbytes=desc.length,
                                 payload=parsed.payload_len)
            self.obs.metrics.counter("net.rx_packets").inc()
        self.allocators.buddies[slot.buf.node].free_pages(slot.buf.pa, core)
        self._refill_rx(core, qid)
        if self.obs.enabled:
            self.obs.spans.end(core)        # rx_packet
            self.obs.requests.end(core)
        return parsed.payload_len

    def _receive_one_fast(self, core: Core, qid: int,
                          frame: bytes) -> Optional[int]:
        """:meth:`receive_one` with the observability hooks elided.

        Bound over ``receive_one`` at construction when the context is
        disabled; must charge exactly what the instrumented path charges.
        """
        if not self.nic.receive_frame(qid, frame):
            return None
        reaped = self._rx_rings[qid].reap()
        if reaped is None:
            raise SimulationError("NIC signalled RX but ring has no completion")
        index, desc = reaped
        slot = self._rx_slots[qid].pop(index)
        self.dma_api.dma_unmap(core, slot.handle)
        core.charge(self.cost.rx_parse_cycles, CAT_RX_PARSE)
        parsed = parse_frame(self.machine.memory.read(slot.buf.pa,
                                                      desc.length))
        self.stats.rx_packets += 1
        self.stats.rx_bytes += desc.length
        self.allocators.buddies[slot.buf.node].free_pages(slot.buf.pa, core)
        self._refill_rx(core, qid)
        return parsed.payload_len

    # ------------------------------------------------------------------
    # TX path.
    # ------------------------------------------------------------------
    def _tx_ring_slots_ready(self, core: Core, qid: int,
                             needed: int = 1) -> bool:
        """Ensure ``needed`` free TX slots, reaping completions to make
        room.  A fault plan can force the overflow path even when the
        ring has space (the recovery — reap and retry — is identical).
        Returns ``False`` when reaping did not help: the caller drops.
        """
        ring = self._tx_rings[qid]
        short = ring.entries - ring.outstanding < needed
        injected = (not short and self.faults.enabled
                    and self.faults.fires(SITE_RING_OVERFLOW, core))
        if not (short or injected):
            return True
        self.reap_tx(core, qid)
        if ring.entries - ring.outstanding < needed:
            return False
        self.stats.tx_ring_recoveries += 1
        if self.obs.enabled:
            self.obs.tracer.emit(EV_FAULT_RECOVER, core.now, core.cid,
                                 site=SITE_RING_OVERFLOW,
                                 action="reap-retry")
            self.obs.metrics.counter("faults.recovered.ring").inc()
        return True

    def _drop_chunk(self, core: Core, buf: KBuffer,
                    free_buffer: bool) -> None:
        self.stats.tx_dropped_chunks += 1
        if free_buffer:
            self.allocators.slabs[buf.node].kfree(buf, core)

    def send_chunk(self, core: Core, qid: int, buf: KBuffer,
                   free_buffer: bool = True) -> bool:
        """Map and post one (TSO-sized) chunk as a single descriptor.

        Returns ``False`` when the chunk was dropped (ring full after
        reaping, or the map failed) — like a real driver's
        ``NETDEV_TX_BUSY``/drop path, nothing leaks and the caller may
        retry with a fresh buffer.
        """
        if not self._tx_ring_slots_ready(core, qid):
            self._drop_chunk(core, buf, free_buffer)
            return False
        try:
            handle = self.dma_api.dma_map(core, buf, DmaDirection.TO_DEVICE)
        except ReproError:
            self.stats.tx_map_failures += 1
            self._drop_chunk(core, buf, free_buffer)
            return False
        ring = self._tx_rings[qid]
        index = ring.post(Descriptor(addr=handle.iova, length=buf.size,
                                     flags=FLAG_READY | FLAG_EOP))
        self._tx_slots[qid][index] = _TxSlot(buf=buf, handle=handle,
                                             free_buffer=free_buffer)
        core.charge(self.cost.tx_desc_cycles, CAT_OTHER)
        self.stats.tx_chunks += 1
        self.stats.tx_bytes += buf.size
        if self.obs.enabled:
            self.obs.tracer.emit(EV_NET_TX, core.now, core.cid, qid=qid,
                                 nbytes=buf.size, sg=False)
            self.obs.metrics.counter("net.tx_chunks").inc()
        return True

    def send_chunk_sg(self, core: Core, qid: int, buf: KBuffer,
                      free_buffer: bool = True) -> int:
        """Map and post one chunk as page-sized scatter-gather elements.

        Models an skb whose payload lives in page frags: each element is
        ``dma_map_sg``-ed separately (§2.2 footnote — SG works
        analogously), so zero-copy schemes pay per-page costs and the
        copy scheme performs per-element copies.  Returns the element
        count.
        """
        elements: list[KBuffer] = []
        offset = 0
        while offset < buf.size:
            chunk = min(PAGE_SIZE - ((buf.pa + offset) & (PAGE_SIZE - 1)),
                        buf.size - offset)
            elements.append(KBuffer(pa=buf.pa + offset, size=chunk,
                                    node=buf.node))
            offset += chunk
        if not self._tx_ring_slots_ready(core, qid, needed=len(elements)):
            self._drop_chunk(core, buf, free_buffer)
            return 0
        try:
            handles = self.dma_api.dma_map_sg(core, elements,
                                              DmaDirection.TO_DEVICE)
        except ReproError:
            # dma_map_sg is all-or-nothing: the mapped prefix was already
            # unwound inside the API, so only the chunk itself remains.
            self.stats.tx_map_failures += 1
            self._drop_chunk(core, buf, free_buffer)
            return 0
        ring = self._tx_rings[qid]
        last = len(handles) - 1
        for i, (element, handle) in enumerate(zip(elements, handles)):
            flags = FLAG_READY | (FLAG_EOP if i == last else 0)
            index = ring.post(Descriptor(addr=handle.iova,
                                         length=element.size, flags=flags))
            self._tx_slots[qid][index] = _TxSlot(
                buf=element, handle=handle, free_buffer=False,
                parent=buf if (free_buffer and i == last) else None)
        # Descriptor-build cost accumulated over the burst: nothing in the
        # posting loop reads the clock, so one charge is cycle-identical
        # to per-element charges.
        core.charge(self.cost.tx_desc_burst_cycles(len(handles)), CAT_OTHER)
        self.stats.tx_chunks += 1
        self.stats.tx_bytes += buf.size
        if self.obs.enabled:
            self.obs.tracer.emit(EV_NET_TX, core.now, core.cid, qid=qid,
                                 nbytes=buf.size, sg=True,
                                 elements=len(handles))
            self.obs.metrics.counter("net.tx_chunks").inc()
        return len(handles)

    def reap_tx(self, core: Core, qid: int) -> int:
        """Process TX completions: unmap and free transmitted chunks."""
        ring = self._tx_rings[qid]
        reaped = 0
        while True:
            item = ring.reap()
            if item is None:
                break
            index, _ = item
            slot = self._tx_slots[qid].pop(index)
            self.dma_api.dma_unmap(core, slot.handle)
            core.charge(self.cost.tx_complete_cycles, CAT_OTHER)
            if slot.free_buffer:
                self.allocators.slabs[slot.buf.node].kfree(slot.buf, core)
            if slot.parent is not None:
                self.allocators.slabs[slot.parent.node].kfree(slot.parent,
                                                              core)
            reaped += 1
        return reaped

    def transmit_one(self, core: Core, qid: int, chunk_bytes: int,
                     payload: bytes | None = None) -> int:
        """Full TX cycle for one chunk: allocate, fill, send, reap.

        Returns the number of wire segments the NIC emitted.
        """
        if self.obs.enabled:
            self.obs.requests.begin(core, REQ_TX, qid=qid,
                                    nbytes=chunk_bytes)
            self.nic.dma_core = core
            self.obs.spans.begin(SPAN_TX_CHUNK, core)
        node = core.numa_node
        buf = self.allocators.slabs[node].kmalloc(chunk_bytes, core)
        if payload is not None:
            self.machine.memory.write(buf.pa, payload[:chunk_bytes])
        sent = self.send_chunk(core, qid, buf)
        if not sent:
            # Chunk dropped (ring full / map failure): nothing armed, so
            # skip the device and just drain any pending completions.
            self.reap_tx(core, qid)
            if self.obs.enabled:
                self.obs.spans.end(core)    # tx_chunk
                self.obs.requests.end(core)
            return 0
        if self.obs.enabled:
            self.obs.spans.begin(SPAN_DEVICE_ACCESS, core)
        segments = self.nic.transmit_pending(qid)
        if self.obs.enabled:
            self.obs.spans.end(core)        # device_access
        self.reap_tx(core, qid)
        if self.obs.enabled:
            self.obs.spans.end(core)        # tx_chunk
            self.obs.requests.end(core)
        return segments

    def _transmit_one_fast(self, core: Core, qid: int, chunk_bytes: int,
                           payload: bytes | None = None) -> int:
        """:meth:`transmit_one` with the observability hooks elided.

        Bound over ``transmit_one`` at construction when the context is
        disabled; must charge exactly what the instrumented path charges.
        """
        node = core.numa_node
        buf = self.allocators.slabs[node].kmalloc(chunk_bytes, core)
        if payload is not None:
            self.machine.memory.write(buf.pa, payload[:chunk_bytes])
        if not self.send_chunk(core, qid, buf):
            self.reap_tx(core, qid)
            return 0
        segments = self.nic.transmit_pending(qid)
        self.reap_tx(core, qid)
        return segments
