"""Ethernet/IPv4/TCP frame construction and parsing.

The simulation moves real frames: the NIC model DMA-writes these bytes
into RX buffers, the shadow pool copies them, and the §5.4 copy hint
parses the IPv4 total-length field out of them.  Only the fields the
system actually consumes are populated; payload bytes default to zeros
(cheap to build, and content is checked by tests that care).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.sim.units import ETH_MTU, TCP_MSS

ETH_HEADER_LEN = 14
IP_HEADER_LEN = 20
TCP_HEADER_LEN = 20
HEADERS_LEN = ETH_HEADER_LEN + IP_HEADER_LEN + TCP_HEADER_LEN

_ETH_FMT = "!6s6sH"
_IP_FMT = "!BBHHHBBH4s4s"
_TCP_FMT = "!HHIIBBHHH"

ETHERTYPE_IPV4 = 0x0800


@dataclass(frozen=True)
class ParsedFrame:
    """The header fields the receive path looks at."""

    src_port: int
    dst_port: int
    seq: int
    payload_len: int
    ip_total_len: int

    @property
    def frame_len(self) -> int:
        return ETH_HEADER_LEN + self.ip_total_len


def max_payload(mtu: int = ETH_MTU) -> int:
    """TCP payload capacity of one frame at ``mtu`` (the MSS)."""
    return mtu - IP_HEADER_LEN - TCP_HEADER_LEN


def build_frame(payload_len: int, *, src_port: int = 40000,
                dst_port: int = 12865, seq: int = 0,
                payload: bytes | None = None,
                mtu: int = ETH_MTU) -> bytes:
    """Build one TCP/IPv4/Ethernet frame carrying ``payload_len`` bytes."""
    if payload_len < 0 or payload_len > max_payload(mtu):
        raise ConfigurationError(
            f"payload {payload_len} exceeds MSS {max_payload(mtu)}"
        )
    if payload is None:
        payload = bytes(payload_len)
    elif len(payload) != payload_len:
        raise ConfigurationError("payload bytes disagree with payload_len")
    ip_total = IP_HEADER_LEN + TCP_HEADER_LEN + payload_len
    eth = struct.pack(_ETH_FMT, b"\x02\x00\x00\x00\x00\x02",
                      b"\x02\x00\x00\x00\x00\x01", ETHERTYPE_IPV4)
    ip = struct.pack(_IP_FMT,
                     0x45, 0, ip_total, 0, 0, 64, 6, 0,
                     bytes([10, 0, 0, 1]), bytes([10, 0, 0, 2]))
    tcp = struct.pack(_TCP_FMT, src_port, dst_port, seq, 0,
                      (TCP_HEADER_LEN // 4) << 4, 0x10, 0xFFFF, 0, 0)
    return eth + ip + tcp + payload


def parse_frame(frame: bytes) -> ParsedFrame:
    """Parse the headers of a frame produced by :func:`build_frame`."""
    if len(frame) < HEADERS_LEN:
        raise ConfigurationError(f"runt frame of {len(frame)} bytes")
    ethertype = struct.unpack_from("!H", frame, 12)[0]
    if ethertype != ETHERTYPE_IPV4:
        raise ConfigurationError(f"unexpected ethertype {ethertype:#x}")
    ip_fields = struct.unpack_from(_IP_FMT, frame, ETH_HEADER_LEN)
    ip_total = ip_fields[2]
    tcp_off = ETH_HEADER_LEN + IP_HEADER_LEN
    src_port, dst_port, seq = struct.unpack_from("!HHI", frame, tcp_off)
    payload_len = ip_total - IP_HEADER_LEN - TCP_HEADER_LEN
    return ParsedFrame(src_port=src_port, dst_port=dst_port, seq=seq,
                       payload_len=payload_len, ip_total_len=ip_total)


def segment_payload(total_bytes: int, mss: int = TCP_MSS) -> list[int]:
    """Split a byte stream into per-frame payload sizes (TSO/wire view)."""
    if total_bytes < 0:
        raise ConfigurationError("negative byte count")
    if total_bytes == 0:
        return []
    full, rest = divmod(total_bytes, mss)
    sizes = [mss] * full
    if rest:
        sizes.append(rest)
    return sizes
